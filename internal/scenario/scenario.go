// Package scenario is the registry of named, composable protection-scheme
// and fault-model plugins that internal/faultsim simulates.
//
// A scheme plugin builds a complete engine Policy — correctability
// predicate (with incremental state when the predicate supports it),
// sparing policy, TSV-SWAP setting, and an optional arrival Observer —
// from a declarative parameter map. A fault-model plugin builds an
// arrival-process factory (faultsim.Arrivals, one instance per engine
// worker) from the geometry, the FIT rates, and the same parameter map.
// The existing hand-wired constructions became the first plugins: every
// citadel.Scheme is registered under its String() name (schemes.go) and
// the Poisson FIT-rate process is the "poisson" fault model, so registry
// construction is bit-identical to the seed-era wiring (differential
// tests pin this).
//
// Composition rules: a simulation names one scheme and one fault model;
// they share a flat Params namespace whose keys are validated against the
// union of both plugins' declared ParamDocs (ValidateParams). Plugins
// read their knobs with defaults and ignore keys addressed to the other
// plugin. Scenario-specific outputs flow through additive
// Result.ScenarioStats counters; plugins must never let an observer or a
// stats counter change a verdict, an RNG draw, or trial control flow —
// the engine's determinism contract extends through every plugin.
package scenario

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/stack"
)

// DefaultFaultModel is the arrival process used when a spec names none:
// Poisson arrivals at the configured FIT rates, exactly as the engine has
// always drawn them.
const DefaultFaultModel = "poisson"

// Params carries plugin-specific numeric knobs. Keys are validated
// against the registered ParamDocs (ValidateParams); plugins read values
// through Get so absent keys fall back to their documented defaults.
type Params map[string]float64

// Get returns the value of name, or def when absent.
func (p Params) Get(name string, def float64) float64 {
	if v, ok := p[name]; ok {
		return v
	}
	return def
}

// ParamDoc documents one knob of a plugin: its name, default, and
// meaning. The catalog endpoint serves these verbatim.
type ParamDoc struct {
	Name    string  `json:"name"`
	Default float64 `json:"default"`
	Doc     string  `json:"doc"`
}

// Scheme is a registered protection-scheme plugin.
type Scheme struct {
	// Name identifies the scheme in specs, flags, and results.
	Name string
	// Description is a one-line summary for the catalog.
	Description string
	// Params documents the knobs Build reads. Keys outside every declared
	// doc are rejected by ValidateParams before Build runs.
	Params []ParamDoc
	// Build constructs the engine policy for a geometry. It must be pure:
	// equal inputs give policies that simulate bit-identically.
	Build func(cfg stack.Config, p Params) (faultsim.Policy, error)
}

// FaultModel is a registered arrival-process plugin.
type FaultModel struct {
	// Name identifies the model in specs and flags.
	Name string
	// Description is a one-line summary for the catalog.
	Description string
	// Params documents the knobs Build reads.
	Params []ParamDoc
	// Build returns a factory the engine calls once per worker goroutine;
	// each returned source may keep unsynchronized per-worker state but
	// must draw all randomness from the rng handed to AppendLifetime.
	Build func(cfg stack.Config, rates fault.Rates, p Params) (func() faultsim.Arrivals, error)
}

var (
	mu          sync.RWMutex
	schemes     = map[string]Scheme{}
	faultModels = map[string]FaultModel{}
)

// RegisterScheme adds a scheme plugin to the registry. It panics on an
// empty name, a nil Build, or a duplicate registration — registration
// happens in init functions, where a bad plugin is a programming error.
func RegisterScheme(s Scheme) {
	if s.Name == "" || s.Build == nil {
		panic("scenario: RegisterScheme requires a name and a Build function")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := schemes[s.Name]; dup {
		panic(fmt.Sprintf("scenario: scheme %q registered twice", s.Name))
	}
	schemes[s.Name] = s
}

// RegisterFaultModel adds a fault-model plugin to the registry, with the
// same panics-on-misuse contract as RegisterScheme.
func RegisterFaultModel(m FaultModel) {
	if m.Name == "" || m.Build == nil {
		panic("scenario: RegisterFaultModel requires a name and a Build function")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := faultModels[m.Name]; dup {
		panic(fmt.Sprintf("scenario: fault model %q registered twice", m.Name))
	}
	faultModels[m.Name] = m
}

// SchemeByName looks up a registered scheme plugin.
func SchemeByName(name string) (Scheme, bool) {
	mu.RLock()
	defer mu.RUnlock()
	s, ok := schemes[name]
	return s, ok
}

// FaultModelByName looks up a registered fault-model plugin. The empty
// name resolves to DefaultFaultModel.
func FaultModelByName(name string) (FaultModel, bool) {
	if name == "" {
		name = DefaultFaultModel
	}
	mu.RLock()
	defer mu.RUnlock()
	m, ok := faultModels[name]
	return m, ok
}

// Schemes lists every registered scheme plugin, sorted by name.
func Schemes() []Scheme {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Scheme, 0, len(schemes))
	for _, s := range schemes {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FaultModels lists every registered fault-model plugin, sorted by name.
func FaultModels() []FaultModel {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]FaultModel, 0, len(faultModels))
	for _, m := range faultModels {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// BuildScheme constructs the policy of a named scheme. Parameter keys are
// not validated here (the map is shared with the fault model); call
// ValidateParams first when the input is untrusted.
func BuildScheme(name string, cfg stack.Config, p Params) (faultsim.Policy, error) {
	s, ok := SchemeByName(name)
	if !ok {
		return faultsim.Policy{}, fmt.Errorf("scenario: unknown scheme %q", name)
	}
	return s.Build(cfg, p)
}

// BuildFaultModel constructs the per-worker arrivals factory of a named
// fault model ("" selects DefaultFaultModel).
func BuildFaultModel(name string, cfg stack.Config, rates fault.Rates, p Params) (func() faultsim.Arrivals, error) {
	m, ok := FaultModelByName(name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown fault model %q", name)
	}
	return m.Build(cfg, rates, p)
}

// ValidateParams rejects parameter keys that neither the named scheme nor
// the named fault model declares — the two plugins share one flat
// namespace, so a key is valid if either side documents it. Unknown
// scheme or model names are reported too, so callers can validate a whole
// scenario selection with one call.
func ValidateParams(scheme, model string, p Params) error {
	s, ok := SchemeByName(scheme)
	if !ok {
		return fmt.Errorf("scenario: unknown scheme %q", scheme)
	}
	m, ok := FaultModelByName(model)
	if !ok {
		return fmt.Errorf("scenario: unknown fault model %q", model)
	}
	if len(p) == 0 {
		return nil
	}
	known := make(map[string]bool, len(s.Params)+len(m.Params))
	for _, d := range s.Params {
		known[d.Name] = true
	}
	for _, d := range m.Params {
		known[d.Name] = true
	}
	unknown := make([]string, 0, len(p))
	for k := range p {
		if !known[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("scenario: unknown parameter(s) %v for scheme %q with fault model %q",
			unknown, scheme, m.Name)
	}
	return nil
}

// Catalog is the machine-readable registry listing served at
// GET /api/v1/scenarios.
type Catalog struct {
	Schemes     []CatalogEntry `json:"schemes"`
	FaultModels []CatalogEntry `json:"faultModels"`
}

// CatalogEntry is one plugin row of the catalog.
type CatalogEntry struct {
	Name        string     `json:"name"`
	Description string     `json:"description"`
	Params      []ParamDoc `json:"params,omitempty"`
}

// BuildCatalog snapshots the registry into a Catalog, sorted by name.
func BuildCatalog() Catalog {
	var c Catalog
	for _, s := range Schemes() {
		c.Schemes = append(c.Schemes, CatalogEntry{Name: s.Name, Description: s.Description, Params: s.Params})
	}
	for _, m := range FaultModels() {
		c.FaultModels = append(c.FaultModels, CatalogEntry{Name: m.Name, Description: m.Description, Params: m.Params})
	}
	return c
}
