package scenario

import (
	"fmt"
	"math/bits"

	"repro/internal/ecc"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/stack"
)

// cerberus-cross-layer models a Cerberus-style ECC co-design (Yağlıkçı):
// an on-die SEC code over small codewords inside each DRAM die, composed
// with a rank-level 8-bit symbol code striped across channels. The two
// layers interact through miscorrection: the on-die decoder silently
// absorbs a lone single-bit error, but when a second fault lands in the
// same on-die codeword the decoder sees a multi-bit syndrome and — in the
// worst case this predicate models deterministically — "corrects" the
// wrong bit, amplifying the damage to word-granularity corruption that
// the rank-level code must then catch.
//
// Cross-layer transform applied before rank-level evaluation:
//
//  1. A Bit-class fault whose on-die codeword contains no other live
//     fault is corrected on-die and dropped.
//  2. A Bit-class fault sharing an on-die codeword with any other fault
//     escalates to a Word-class footprint over that codeword window (the
//     worst-case miscorrection burst).
//  3. Larger-granularity faults pass through unchanged — the on-die
//     decoder miscorrects inside already-lost words, adding nothing.
//
// The transformed set feeds ecc.Symbol8 across channels, so failures are
// exactly the rank-level code's failures on post-miscorrection damage.

const (
	cerberusSchemeName   = "cerberus-cross-layer"
	defaultOndieWordBits = 128
)

func init() {
	RegisterScheme(Scheme{
		Name:        cerberusSchemeName,
		Description: "on-die SEC composed with a rank-level symbol code; multi-bit on-die codewords miscorrect into word bursts",
		Params: []ParamDoc{
			{Name: "ondieWordBits", Default: defaultOndieWordBits,
				Doc: "on-die SEC codeword width in bits (power of two dividing the row width)"},
		},
		Build: func(cfg stack.Config, p Params) (faultsim.Policy, error) {
			wb := int(p.Get("ondieWordBits", defaultOndieWordBits))
			rowBits := cfg.RowBytes * 8
			if wb <= 0 || bits.OnesCount(uint(wb)) != 1 || rowBits%wb != 0 {
				return faultsim.Policy{}, fmt.Errorf(
					"scenario: %s needs ondieWordBits to be a power of two dividing the %d-bit row, got %d",
					cerberusSchemeName, rowBits, wb)
			}
			return faultsim.Policy{
				Name: cerberusSchemeName,
				Predicate: &cerberusPredicate{
					inner:    ecc.NewSymbol8(cfg, stack.AcrossChannels),
					wordBits: uint32(wb),
					rowBits:  uint32(rowBits),
				},
			}, nil
		},
	})
}

// cerberusPredicate applies the on-die correction/miscorrection transform
// and evaluates the rank-level symbol code on the result. Predicates are
// shared across engine workers, so the transform builds a fresh slice per
// call instead of keeping scratch state.
type cerberusPredicate struct {
	inner    *ecc.Symbol8
	wordBits uint32
	rowBits  uint32
}

func (c *cerberusPredicate) Name() string { return cerberusSchemeName }

func (c *cerberusPredicate) Uncorrectable(live []fault.Fault) bool {
	out := make([]fault.Fault, 0, len(live))
	for i := range live {
		f := live[i]
		if f.Class != fault.Bit {
			out = append(out, f)
			continue
		}
		start, ok := c.codewordStart(f.Region.Col)
		if !ok {
			out = append(out, f) // unlocatable bit column; be conservative
			continue
		}
		if !c.sharesCodeword(live, i, start) {
			continue // lone bit error: absorbed by the on-die SEC
		}
		// Worst-case miscorrection: the decoder corrupts its whole
		// codeword. Escalate to Word-class damage over the window.
		g := f
		g.Class = fault.Word
		g.Region.Col = fault.MaskPattern(^(c.wordBits - 1), start)
		out = append(out, g)
	}
	if len(out) == 0 {
		return false
	}
	return c.inner.Uncorrectable(out)
}

// codewordStart returns the aligned start column of the on-die codeword
// holding the (exact) bit column described by col.
func (c *cerberusPredicate) codewordStart(col fault.Pattern) (uint32, bool) {
	v, ok := col.First(c.rowBits)
	if !ok {
		return 0, false
	}
	return v &^ (c.wordBits - 1), true
}

// sharesCodeword reports whether any other live fault's footprint
// intersects the on-die codeword window of live[i].
func (c *cerberusPredicate) sharesCodeword(live []fault.Fault, i int, start uint32) bool {
	f := &live[i].Region
	window := fault.MaskPattern(^(c.wordBits - 1), start)
	for j := range live {
		if j == i {
			continue
		}
		g := &live[j].Region
		if g.Stack != f.Stack {
			continue
		}
		if g.Die.Intersects(f.Die) && g.Bank.Intersects(f.Bank) &&
			g.Row.Intersects(f.Row) && g.Col.Intersects(window) {
			return true
		}
	}
	return false
}
