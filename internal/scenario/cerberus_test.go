package scenario

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/stack"
)

func buildCerberus(t *testing.T, p Params) *cerberusPredicate {
	t.Helper()
	pol, err := BuildScheme(cerberusSchemeName, stack.DefaultConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	return pol.Predicate.(*cerberusPredicate)
}

// bitFault places a die-exact single-bit fault at one column.
func bitFault(die, bank, row, col uint32) fault.Fault {
	return fault.Fault{
		Class: fault.Bit,
		Region: fault.Region{
			Die:  fault.ExactPattern(die),
			Bank: fault.ExactPattern(bank),
			Row:  fault.ExactPattern(row),
			Col:  fault.ExactPattern(col),
		},
	}
}

func TestCerberusBuildValidation(t *testing.T) {
	for _, bad := range []float64{0, -128, 100, 1 << 20} {
		if _, err := BuildScheme(cerberusSchemeName, stack.DefaultConfig(), Params{"ondieWordBits": bad}); err == nil {
			t.Errorf("ondieWordBits=%g: expected error", bad)
		}
	}
	if _, err := BuildScheme(cerberusSchemeName, stack.DefaultConfig(), Params{"ondieWordBits": 64}); err != nil {
		t.Errorf("ondieWordBits=64: %v", err)
	}
}

func TestCerberusLoneBitsAbsorbed(t *testing.T) {
	pred := buildCerberus(t, nil)
	// Lone bit errors — even many, even across dies at the same striped
	// line — are each alone in their on-die codeword, so the on-die SEC
	// absorbs them all.
	live := []fault.Fault{
		bitFault(0, 1, 5, 3),
		bitFault(1, 1, 5, 3),
		bitFault(2, 1, 5, 3),
		bitFault(3, 1, 5, 3),
		bitFault(4, 1, 5, 3),
		bitFault(0, 1, 9, 200), // different row, same die
	}
	if pred.Uncorrectable(live) {
		t.Fatal("lone bit faults should all be absorbed on-die")
	}
}

func TestCerberusCodewordGeometry(t *testing.T) {
	pred := buildCerberus(t, nil)
	// Columns 3 and 100 share the [0,128) codeword; 130 does not.
	a := bitFault(0, 1, 5, 3)
	b := bitFault(0, 1, 5, 100)
	c := bitFault(0, 1, 5, 130)
	start, ok := pred.codewordStart(a.Region.Col)
	if !ok || start != 0 {
		t.Fatalf("codewordStart(3) = (%d, %t), want (0, true)", start, ok)
	}
	if !pred.sharesCodeword([]fault.Fault{a, b}, 0, start) {
		t.Fatal("cols 3 and 100 should share the 128-bit codeword")
	}
	if pred.sharesCodeword([]fault.Fault{a, c}, 0, start) {
		t.Fatal("cols 3 and 130 are in different codewords")
	}
	// Different dies never share an on-die codeword.
	d := bitFault(1, 1, 5, 5)
	if pred.sharesCodeword([]fault.Fault{a, d}, 0, start) {
		t.Fatal("different dies should not share a codeword")
	}
}

// handTransform replicates the documented cross-layer rules so the
// predicate's composed verdict can be checked against feeding the inner
// rank-level code the transformed set directly.
func handTransform(pred *cerberusPredicate, live []fault.Fault) []fault.Fault {
	var out []fault.Fault
	for i, f := range live {
		if f.Class != fault.Bit {
			out = append(out, f)
			continue
		}
		start, ok := pred.codewordStart(f.Region.Col)
		if !ok {
			out = append(out, f)
			continue
		}
		if !pred.sharesCodeword(live, i, start) {
			continue
		}
		g := f
		g.Class = fault.Word
		g.Region.Col = fault.MaskPattern(^(pred.wordBits - 1), start)
		out = append(out, g)
	}
	return out
}

func TestCerberusComposesWithRankCode(t *testing.T) {
	pred := buildCerberus(t, nil)
	bank := fault.Fault{
		Class: fault.Bank,
		Region: fault.Region{
			Die:  fault.ExactPattern(2),
			Bank: fault.ExactPattern(1),
			Row:  fault.AllPattern(),
			Col:  fault.AllPattern(),
		},
	}
	cases := [][]fault.Fault{
		// Pass-through: no bit faults at all.
		{bank},
		// Escalation: two bits colliding in one codeword.
		{bitFault(0, 1, 5, 3), bitFault(0, 1, 5, 100)},
		// Mixed: a bit colliding with a bank-wide footprint escalates,
		// a lone bit elsewhere is absorbed.
		{bitFault(2, 1, 5, 3), bank, bitFault(0, 3, 9, 7)},
		// Collision via a row fault in the same die/bank/row.
		{bitFault(1, 0, 17, 300), exactFault(1, 0, 17)},
	}
	for i, live := range cases {
		got := pred.Uncorrectable(live)
		want := false
		if tr := handTransform(pred, live); len(tr) > 0 {
			want = pred.inner.Uncorrectable(tr)
		}
		if got != want {
			t.Errorf("case %d: composed verdict %t, inner-on-transformed %t", i, got, want)
		}
	}
	// And the escalation must be observable: a bit colliding with a row
	// fault must matter more than the row fault alone at least once in
	// the transform (the escalated Word is present).
	tr := handTransform(pred, cases[3])
	if len(tr) != 2 || tr[0].Class != fault.Word {
		t.Fatalf("expected escalated Word + Row, got %+v", tr)
	}
}
