package scenario

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/stack"
)

// BenchmarkRowhammerArrivals gates the rowhammer arrival generator's
// per-trial cost. Unlike the Poisson sampler it draws an episode
// schedule per aggressor and insertion-sorts the merged stream, so a
// regression here slows every rowhammer campaign; benchjson tracks the
// trials/s entry in BENCH_faultsim.json.
func BenchmarkRowhammerArrivals(b *testing.B) {
	factory, err := BuildFaultModel(rowhammerModelName, stack.DefaultConfig(),
		fault.Table1().WithTSV(1430), Params{"breakthroughProb": 1e-7})
	if err != nil {
		b.Fatal(err)
	}
	src := factory()
	rng := rand.New(rand.NewSource(1))
	var buf []fault.Fault
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = src.AppendLifetime(rng, lifetimeHours, buf[:0])
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}
