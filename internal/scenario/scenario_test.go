package scenario

import (
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/stack"
)

// The twelve seed-era scheme names, exactly as citadel.Scheme.String()
// prints them.
var seedSchemes = []string{
	"None", "Symbol8/Same-Bank", "Symbol8/Across-Banks", "Symbol8/Across-Channels",
	"1DP", "2DP", "3DP", "3DP+DDS", "Citadel", "BCH-6EC7ED", "RAID-5", "2D-ECC",
}

func TestSeedSchemesRegistered(t *testing.T) {
	for _, name := range seedSchemes {
		s, ok := SchemeByName(name)
		if !ok {
			t.Fatalf("seed scheme %q not registered", name)
		}
		pol, err := s.Build(stack.DefaultConfig(), nil)
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		if pol.Name != name {
			t.Fatalf("policy name = %q, want %q", pol.Name, name)
		}
		if pol.Predicate == nil {
			t.Fatalf("scheme %q built a nil predicate", name)
		}
	}
	c, ok := SchemeByName("Citadel")
	if !ok {
		t.Fatal("Citadel missing")
	}
	pol, err := c.Build(stack.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !pol.UseTSVSwap || pol.NewSparer == nil {
		t.Fatalf("Citadel policy lost TSV-SWAP or DDS: %+v", pol)
	}
}

func TestNewScenariosRegistered(t *testing.T) {
	for _, name := range []string{"two-tier-replication", "cerberus-cross-layer"} {
		if _, ok := SchemeByName(name); !ok {
			t.Fatalf("scheme %q not registered", name)
		}
	}
	if _, ok := FaultModelByName("rowhammer"); !ok {
		t.Fatal("fault model rowhammer not registered")
	}
}

func TestFaultModelDefault(t *testing.T) {
	m, ok := FaultModelByName("")
	if !ok || m.Name != DefaultFaultModel {
		t.Fatalf("empty name resolved to (%q, %t), want (%q, true)", m.Name, ok, DefaultFaultModel)
	}
	if _, ok := FaultModelByName("no-such-model"); ok {
		t.Fatal("unknown fault model resolved")
	}
	if _, ok := SchemeByName("no-such-scheme"); ok {
		t.Fatal("unknown scheme resolved")
	}
}

// The poisson plugin must construct the exact sampler the engine builds
// when Options.NewArrivals is nil — same type, same draw sequence.
func TestPoissonPluginMatchesEngineDefault(t *testing.T) {
	cfg := stack.DefaultConfig()
	rates := fault.Table1().WithTSV(1430)
	factory, err := BuildFaultModel("", cfg, rates, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := factory()
	if _, ok := src.(*fault.Sampler); !ok {
		t.Fatalf("poisson plugin built %T, want *fault.Sampler", src)
	}
}

func TestValidateParams(t *testing.T) {
	cases := []struct {
		scheme, model string
		params        Params
		wantErr       string
	}{
		{"Citadel", "", nil, ""},
		{"two-tier-replication", "", Params{"fetchLatencyMicros": 1}, ""},
		{"Citadel", "rowhammer", Params{"aggressors": 8}, ""},
		// Shared flat namespace: scheme and model knobs in one map.
		{"two-tier-replication", "rowhammer", Params{"fetchLatencyMicros": 1, "aggressors": 2}, ""},
		{"Citadel", "", Params{"fetchLatencyMicros": 1}, "unknown parameter"},
		{"Citadel", "rowhammer", Params{"bogus": 1}, "bogus"},
		{"no-such-scheme", "", nil, "unknown scheme"},
		{"Citadel", "no-such-model", nil, "unknown fault model"},
	}
	for _, c := range cases {
		err := ValidateParams(c.scheme, c.model, c.params)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("ValidateParams(%q, %q, %v) = %v, want nil", c.scheme, c.model, c.params, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("ValidateParams(%q, %q, %v) = %v, want error containing %q", c.scheme, c.model, c.params, err, c.wantErr)
		}
	}
}

func TestParamsGet(t *testing.T) {
	p := Params{"a": 2}
	if got := p.Get("a", 7); got != 2 {
		t.Fatalf("Get(a) = %g", got)
	}
	if got := p.Get("b", 7); got != 7 {
		t.Fatalf("Get(b) = %g", got)
	}
	var nilP Params
	if got := nilP.Get("a", 7); got != 7 {
		t.Fatalf("nil Get(a) = %g", got)
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	build := func(stack.Config, Params) (faultsim.Policy, error) { return faultsim.Policy{}, nil }
	mustPanic("empty name", func() { RegisterScheme(Scheme{Build: build}) })
	mustPanic("nil build", func() { RegisterScheme(Scheme{Name: "x"}) })
	mustPanic("duplicate", func() { RegisterScheme(Scheme{Name: "Citadel", Build: build}) })
	mbuild := func(stack.Config, fault.Rates, Params) (func() faultsim.Arrivals, error) { return nil, nil }
	mustPanic("model empty name", func() { RegisterFaultModel(FaultModel{Build: mbuild}) })
	mustPanic("model nil build", func() { RegisterFaultModel(FaultModel{Name: "x"}) })
	mustPanic("model duplicate", func() { RegisterFaultModel(FaultModel{Name: "poisson", Build: mbuild}) })
}

func TestCatalog(t *testing.T) {
	c := BuildCatalog()
	if len(c.Schemes) < len(seedSchemes)+2 {
		t.Fatalf("catalog has %d schemes, want >= %d", len(c.Schemes), len(seedSchemes)+2)
	}
	if len(c.FaultModels) < 2 {
		t.Fatalf("catalog has %d fault models, want >= 2", len(c.FaultModels))
	}
	if !sort.SliceIsSorted(c.Schemes, func(i, j int) bool { return c.Schemes[i].Name < c.Schemes[j].Name }) {
		t.Fatal("schemes not sorted")
	}
	if !sort.SliceIsSorted(c.FaultModels, func(i, j int) bool { return c.FaultModels[i].Name < c.FaultModels[j].Name }) {
		t.Fatal("fault models not sorted")
	}
	// The catalog is what GET /api/v1/scenarios serves; it must marshal
	// and carry the documented JSON field names.
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"schemes"`, `"faultModels"`, `"rowhammer"`, `"params"`, `"default"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("catalog JSON missing %s", want)
		}
	}
}
