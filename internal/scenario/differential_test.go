// Differential test: every seed-era scheme built through the scenario
// registry must produce bit-identical Monte Carlo results to the
// pre-registry hand-wired construction. The hand-wired policies below
// replicate, verbatim, the switch that citadel.Scheme.policy contained
// before the registry refactor; if a registry plugin ever drifts (a
// different layout, a lost sparer, a renamed policy), the DeepEqual
// against this frozen construction catches it.
//
// A golden fixture (testdata/differential_golden.json, regenerate with
// `go test ./internal/scenario/ -run Differential -update`) additionally
// pins the absolute numbers, so a behavioral change in the engine or
// the predicates themselves cannot hide behind "both sides moved".
package scenario_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	citadel "repro"
	"repro/internal/ecc"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/parity"
	"repro/internal/sparing"
	"repro/internal/stack"
)

var update = flag.Bool("update", false, "rewrite golden fixtures")

const (
	diffTrials  = 2000
	diffSeed    = 12345
	diffWorkers = 4
	diffTSVFIT  = 1430
)

// handWired reproduces the pre-refactor Scheme.policy switch exactly.
func handWired(name string, cfg stack.Config, tsvSwap bool) faultsim.Policy {
	dds := func(c stack.Config) faultsim.Sparer { return sparing.New(c) }
	var p faultsim.Policy
	citadelNative := false
	switch name {
	case "None":
		p = faultsim.Policy{Predicate: ecc.NoProtection{}}
	case "Symbol8/Same-Bank":
		p = faultsim.Policy{Predicate: ecc.NewSymbol8(cfg, stack.SameBank)}
	case "Symbol8/Across-Banks":
		p = faultsim.Policy{Predicate: ecc.NewSymbol8(cfg, stack.AcrossBanks)}
	case "Symbol8/Across-Channels":
		p = faultsim.Policy{Predicate: ecc.NewSymbol8(cfg, stack.AcrossChannels)}
	case "1DP":
		p = faultsim.Policy{Predicate: ecc.NewParity(cfg, parity.OneDP)}
	case "2DP":
		p = faultsim.Policy{Predicate: ecc.NewParity(cfg, parity.TwoDP)}
	case "3DP":
		p = faultsim.Policy{Predicate: ecc.NewParity(cfg, parity.ThreeDP)}
	case "3DP+DDS":
		p = faultsim.Policy{Predicate: ecc.NewParity(cfg, parity.ThreeDP), NewSparer: dds}
	case "Citadel":
		p = faultsim.Policy{
			Predicate: ecc.NewParity(cfg, parity.ThreeDP),
			NewSparer: dds, UseTSVSwap: true,
		}
		citadelNative = true
	case "BCH-6EC7ED":
		p = faultsim.Policy{Predicate: ecc.NewBCH6EC7ED(cfg)}
	case "RAID-5":
		p = faultsim.Policy{Predicate: ecc.NewRAID5(cfg)}
	case "2D-ECC":
		p = faultsim.Policy{Predicate: ecc.NewTwoDECC(cfg)}
	default:
		panic("unknown seed scheme " + name)
	}
	if tsvSwap {
		p.UseTSVSwap = true
	}
	p.Name = name
	if p.UseTSVSwap && !citadelNative {
		p.Name += "+TSV-Swap"
	}
	return p
}

var diffSchemes = []string{
	"None", "Symbol8/Same-Bank", "Symbol8/Across-Banks", "Symbol8/Across-Channels",
	"1DP", "2DP", "3DP", "3DP+DDS", "Citadel", "BCH-6EC7ED", "RAID-5", "2D-ECC",
}

type diffRecord struct {
	Scheme  string
	TSVSwap bool
	Result  faultsim.Result
}

func TestRegistryDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("24 Monte Carlo runs; skipped in -short")
	}
	cfg := stack.DefaultConfig()
	rates := fault.Table1().WithTSV(diffTSVFIT)
	var golden []diffRecord
	for _, name := range diffSchemes {
		for _, tsvSwap := range []bool{false, true} {
			pol := handWired(name, cfg, tsvSwap)
			want := faultsim.Run(faultsim.Options{
				Config:             cfg,
				Rates:              rates,
				Trials:             diffTrials,
				LifetimeHours:      7 * fault.HoursPerYear,
				ScrubIntervalHours: faultsim.DefaultScrubIntervalHours,
				Seed:               diffSeed,
				Workers:            diffWorkers,
			}, pol)

			got, err := citadel.SimulateScenarioReliability(citadel.ReliabilityOptions{
				Rates:   rates,
				Trials:  diffTrials,
				TSVSwap: tsvSwap,
				Seed:    diffSeed,
				Workers: diffWorkers,
			}, name)
			if err != nil {
				t.Fatalf("%s tsvSwap=%t: %v", name, tsvSwap, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s tsvSwap=%t: registry result diverges from hand-wired construction\nregistry:   %+v\nhand-wired: %+v",
					name, tsvSwap, got, want)
			}
			golden = append(golden, diffRecord{Scheme: name, TSVSwap: tsvSwap, Result: got})
		}
	}

	path := filepath.Join("testdata", "differential_golden.json")
	gotJSON, err := json.MarshalIndent(golden, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	gotJSON = append(gotJSON, '\n')
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, gotJSON, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	wantJSON, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if string(gotJSON) != string(wantJSON) {
		var old []diffRecord
		if err := json.Unmarshal(wantJSON, &old); err != nil {
			t.Fatalf("golden fixture unreadable: %v", err)
		}
		for i := range golden {
			if i < len(old) && !reflect.DeepEqual(golden[i], old[i]) {
				t.Errorf("golden drift at %s tsvSwap=%t:\n got %+v\nwant %+v",
					golden[i].Scheme, golden[i].TSVSwap, golden[i].Result, old[i].Result)
			}
		}
		t.Fatal("results differ from golden fixture (regenerate with -update if intentional)")
	}
}

// TestRowhammerEndToEnd is the `make check` race-smoke target: a short
// rowhammer run through the full public pipeline, deterministic and
// carrying arrival statistics.
func TestRowhammerEndToEnd(t *testing.T) {
	opts := citadel.ReliabilityOptions{
		Trials:     500,
		Seed:       99,
		Workers:    2,
		TSVSwap:    true,
		FaultModel: "rowhammer",
		ScenarioParams: map[string]float64{
			"breakthroughProb": 1e-7,
		},
	}
	run := func() citadel.Result {
		res, err := citadel.SimulateScenarioReliability(opts, "Citadel")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("rowhammer run not deterministic for fixed (seed, workers)")
	}
	if a.Trials != 500 || a.Partial || a.Err != nil {
		t.Fatalf("unexpected result shape: %+v", a)
	}
	if a.ScenarioStats["hammerTrials"] != 500 {
		t.Fatalf("hammerTrials = %g, want 500 (stats: %v)", a.ScenarioStats["hammerTrials"], a.ScenarioStats)
	}
	if a.ScenarioStats["hammerEpisodes"] <= 0 {
		t.Fatalf("no hammer episodes recorded: %v", a.ScenarioStats)
	}
}

// The two new schemes run end-to-end through the public API and carry
// their observer statistics into Result.ScenarioStats.
func TestNewSchemesEndToEnd(t *testing.T) {
	for _, name := range []string{"two-tier-replication", "cerberus-cross-layer"} {
		res, err := citadel.SimulateScenarioReliability(citadel.ReliabilityOptions{
			Trials: 500, Seed: 7, Workers: 2,
		}, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Policy != name || res.Trials != 500 {
			t.Fatalf("%s: unexpected result %+v", name, res)
		}
		if name == "two-tier-replication" && res.ScenarioStats["tierFetchEvents"] <= 0 {
			t.Fatalf("%s: no fetch events in stats %v", name, res.ScenarioStats)
		}
	}
}

// Unknown scenario selections fail loudly through the public API.
func TestScenarioErrorsSurface(t *testing.T) {
	if _, err := citadel.SimulateScenarioReliability(citadel.ReliabilityOptions{Trials: 1}, "no-such"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := citadel.SimulateScenarioReliability(citadel.ReliabilityOptions{
		Trials: 1, FaultModel: "no-such",
	}, "Citadel"); err == nil {
		t.Fatal("unknown fault model accepted")
	}
	if _, err := citadel.SimulateScenarioReliability(citadel.ReliabilityOptions{
		Trials: 1, RareEvent: true, FaultModel: "rowhammer",
	}, "Citadel"); err == nil {
		t.Fatal("rare-event engine accepted a non-poisson fault model")
	}
	if _, err := citadel.SimulateScenarioReliability(citadel.ReliabilityOptions{
		Trials: 1, ScenarioParams: map[string]float64{"bogus": 1},
	}, "Citadel"); err == nil {
		t.Fatal("unknown scenario parameter accepted")
	}
}
