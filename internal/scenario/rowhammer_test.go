package scenario

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/stack"
)

const lifetimeHours = 7 * 24 * 365.25

// hotParams makes episodes frequent enough that a few hundred trials
// exercise every code path without relying on the rare defaults.
var hotParams = Params{
	"breakthroughProb": 1e-7,
	"baselinePoisson":  0,
}

func rowhammerLifetimes(t *testing.T, p Params, seed int64, trials int) ([][]fault.Fault, *rowhammerArrivals) {
	t.Helper()
	factory, err := BuildFaultModel(rowhammerModelName, stack.DefaultConfig(), fault.Table1(), p)
	if err != nil {
		t.Fatal(err)
	}
	src := factory().(*rowhammerArrivals)
	rng := rand.New(rand.NewSource(seed))
	out := make([][]fault.Fault, trials)
	for i := range out {
		out[i] = src.AppendLifetime(rng, lifetimeHours, nil)
	}
	return out, src
}

func TestRowhammerBuildValidation(t *testing.T) {
	bad := []Params{
		{"aggressors": 0},
		{"hammerActsPerHour": -1},
		{"hammerThreshold": 0},
		{"breakthroughProb": 0},
		{"breakthroughProb": 2},
		{"victimRows": 0},
		{"victimPermanentProb": 1.5},
		{"aggressorStride": 0},
		{"rateSigma": -1},
	}
	for _, p := range bad {
		if _, err := BuildFaultModel(rowhammerModelName, stack.DefaultConfig(), fault.Table1(), p); err == nil {
			t.Errorf("params %v: expected error", p)
		}
	}
}

func TestRowhammerDeterministic(t *testing.T) {
	a, _ := rowhammerLifetimes(t, hotParams, 42, 50)
	b, _ := rowhammerLifetimes(t, hotParams, 42, 50)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault streams")
	}
	c, _ := rowhammerLifetimes(t, hotParams, 43, 50)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical fault streams")
	}
}

func TestRowhammerArrivalShape(t *testing.T) {
	cfg := stack.DefaultConfig()
	trials, src := rowhammerLifetimes(t, hotParams, 7, 400)
	total := 0
	for _, faults := range trials {
		for i, f := range faults {
			total++
			if f.Class != fault.Row {
				t.Fatalf("hammer-only run emitted class %v", f.Class)
			}
			if f.Hours <= 0 || f.Hours >= lifetimeHours {
				t.Fatalf("arrival at %g h outside (0, %g)", f.Hours, lifetimeHours)
			}
			if i > 0 && faults[i].Hours < faults[i-1].Hours {
				t.Fatal("arrivals not sorted by Hours")
			}
			if f.Region.Stack < 0 || f.Region.Stack >= cfg.Stacks {
				t.Fatalf("stack %d out of range", f.Region.Stack)
			}
			die, ok := f.Region.Die.First(uint32(cfg.DataDies + cfg.ECCDies))
			if !ok || die >= uint32(cfg.DataDies) {
				t.Fatalf("victim die %d not a data die", die)
			}
			if _, ok := f.Region.Row.First(uint32(cfg.RowsPerBank)); !ok {
				t.Fatal("victim row out of range")
			}
		}
	}
	if total == 0 {
		t.Fatal("hot parameters produced zero hammer faults in 400 lifetimes")
	}
	// Spatial correlation: every fault of one trial lands in the single
	// hot (stack, die, bank).
	for _, faults := range trials {
		for _, f := range faults[1:] {
			if f.Region.Stack != faults[0].Region.Stack ||
				f.Region.Die != faults[0].Region.Die ||
				f.Region.Bank != faults[0].Region.Bank {
				t.Fatal("hammer faults of one trial spread beyond the hot bank")
			}
		}
	}
	stats := map[string]float64{}
	src.FlushStats(stats)
	if stats["hammerTrials"] != 400 {
		t.Fatalf("hammerTrials = %g, want 400", stats["hammerTrials"])
	}
	if stats["hammerVictimFaults"] < float64(total) {
		t.Fatalf("hammerVictimFaults = %g < %d emitted", stats["hammerVictimFaults"], total)
	}
	histSum := stats["hammerTrialsEp0"] + stats["hammerTrialsEp1to3"] + stats["hammerTrialsEp4to15"] + stats["hammerTrialsEp16plus"]
	if histSum != 400 {
		t.Fatalf("episode histogram sums to %g, want 400", histSum)
	}
}

// A hostile parameter choice must degrade to the bounded cap, not an
// unbounded allocation.
func TestRowhammerFaultCap(t *testing.T) {
	p := Params{
		"breakthroughProb": 1,
		"hammerThreshold":  1,
		"baselinePoisson":  0,
		"victimRows":       1,
	}
	trials, _ := rowhammerLifetimes(t, p, 1, 2)
	for _, faults := range trials {
		if len(faults) > maxHammerFaults {
			t.Fatalf("trial emitted %d faults, cap is %d", len(faults), maxHammerFaults)
		}
	}
}

func TestRowhammerBaselineComposes(t *testing.T) {
	// With the baseline on, the stream includes non-Row classes (TSV,
	// bit, bank...) from the Poisson process at boosted rates.
	p := Params{"baselinePoisson": 1, "breakthroughProb": 1e-7}
	factory, err := BuildFaultModel(rowhammerModelName, stack.DefaultConfig(), fault.Table1().WithTSV(1430), p)
	if err != nil {
		t.Fatal(err)
	}
	src := factory()
	rng := rand.New(rand.NewSource(3))
	classes := map[fault.Class]int{}
	var buf []fault.Fault
	for i := 0; i < 2000; i++ {
		buf = src.AppendLifetime(rng, lifetimeHours, buf[:0])
		for j, f := range buf {
			classes[f.Class]++
			if j > 0 && buf[j].Hours < buf[j-1].Hours {
				t.Fatal("merged stream not sorted by Hours")
			}
		}
	}
	if len(classes) < 2 {
		t.Fatalf("baseline composition produced only classes %v", classes)
	}
}
