package citadel

import (
	"context"
	"fmt"
	"time"

	"repro/internal/obs/trace"
	"repro/internal/perfsim"
	"repro/internal/power"
	"repro/internal/workload"
)

// Benchmark is a workload profile (29 SPEC CPU2006, 7 PARSEC, 2 BioBench).
type Benchmark = workload.Profile

// Benchmarks returns all 38 evaluation workloads.
func Benchmarks() []Benchmark { return workload.Profiles() }

// BenchmarkByName looks up one workload.
func BenchmarkByName(name string) (Benchmark, bool) { return workload.ByName(name) }

// Protection selects the protection overheads applied in a performance
// simulation.
type Protection int

const (
	// NoProtection is the fault-free baseline (no ECC traffic).
	NoProtection Protection = iota
	// Protection3DP is 3DP with on-demand parity caching in the LLC.
	Protection3DP
	// Protection3DPNoCache is 3DP updating Dimension-1 parity directly in
	// memory on every writeback.
	Protection3DPNoCache
)

// String names the protection mode.
func (p Protection) String() string {
	switch p {
	case NoProtection:
		return "baseline"
	case Protection3DP:
		return "3DP"
	case Protection3DPNoCache:
		return "3DP-no-cache"
	default:
		return fmt.Sprintf("Protection(%d)", int(p))
	}
}

// PerfOptions configures a performance/power simulation.
type PerfOptions struct {
	// Config is the geometry (default DefaultConfig).
	Config Config
	// Striping is the data layout (default SameBank).
	Striping Striping
	// Protection injects scheme overheads (default NoProtection).
	Protection Protection
	// ParityCacheHitRate is the Dimension-1 parity LLC hit rate used by
	// Protection3DP (default 0.85, the paper's Figure-13 average).
	ParityCacheHitRate float64
	// Requests is the number of memory requests simulated (default 100000).
	Requests int
	// Seed makes runs reproducible.
	Seed int64
	// Progress, when non-nil, receives periodic run snapshots plus a
	// final one with Done set (see perfsim.Config.Progress).
	Progress func(PerfProgress)
	// ProgressInterval throttles Progress callbacks (default 1s).
	ProgressInterval time.Duration
	// RunID correlates progress snapshots, traces, and metrics from one
	// logical run.
	RunID string
	// Tracer, when non-nil, records sampled per-request spans (timestamps
	// in memory-bus cycles) into the flight recorder.
	Tracer *trace.Recorder
}

// PerfProgress is a point-in-time snapshot of a performance simulation.
type PerfProgress = perfsim.Progress

// ReadPhases attributes demand-read latency to its contributors: bank
// queueing, row activation, column access, channel-bus contention, and
// data transfer (see perfsim.Phases).
type ReadPhases = perfsim.Phases

// PerfResult reports execution time and active power for one benchmark.
type PerfResult struct {
	Benchmark string
	Suite     workload.Suite
	// Cycles is execution time in memory-bus cycles.
	Cycles uint64
	// ActivePowerWatts is the modeled average active power.
	ActivePowerWatts float64
	// RowHitRate is the measured row-buffer hit rate.
	RowHitRate float64
	// AvgReadLatencyCycles is the mean demand-read latency in memory-bus
	// cycles (queueing included).
	AvgReadLatencyCycles float64
	// ReadPhases attributes the average demand-read latency to its
	// contributors (per-read averages, in memory-bus cycles).
	ReadPhases ReadPhases
	// AvgParityOverheadCycles is the mean background cycles each
	// parity-touching writeback spent on Dimension-1 parity maintenance
	// (zero without 3DP overheads).
	AvgParityOverheadCycles float64
	// RequestsDone counts the memory requests actually simulated; fewer
	// than requested when the run was cancelled (see Partial).
	RequestsDone int
	// Partial reports that the simulation was cancelled before serving
	// every requested memory request.
	Partial bool
}

// SimulatePerformance runs the timing/power model for one benchmark; it
// cannot be interrupted (see SimulatePerformanceContext).
func SimulatePerformance(b Benchmark, opts PerfOptions) PerfResult {
	return SimulatePerformanceContext(context.Background(), b, opts)
}

// SimulatePerformanceContext runs the timing/power model for one
// benchmark, checking ctx between request batches. A cancelled run
// returns the statistics of the requests served so far with Partial set.
func SimulatePerformanceContext(ctx context.Context, b Benchmark, opts PerfOptions) PerfResult {
	cfg := perfsim.DefaultConfig()
	if opts.Config.Stacks != 0 {
		cfg.Stack = opts.Config
	}
	cfg.Striping = opts.Striping
	if opts.Requests != 0 {
		cfg.Requests = opts.Requests
	}
	cfg.Seed = opts.Seed
	cfg.Progress = opts.Progress
	cfg.ProgressInterval = opts.ProgressInterval
	cfg.RunID = opts.RunID
	cfg.Tracer = opts.Tracer
	hit := opts.ParityCacheHitRate
	if hit == 0 {
		hit = 0.85
	}
	switch opts.Protection {
	case Protection3DP:
		cfg.Overhead = perfsim.Citadel3DP(hit)
	case Protection3DPNoCache:
		cfg.Overhead = perfsim.Citadel3DPNoCache()
	}
	st := perfsim.RunContext(ctx, b, cfg)
	pp := power.Default8Gb()
	return PerfResult{
		Benchmark:               b.Name,
		Suite:                   b.Suite,
		Cycles:                  st.Cycles,
		ActivePowerWatts:        pp.ActivePower(st.Power),
		RowHitRate:              st.RowHitRate(),
		AvgReadLatencyCycles:    st.AvgReadLatency(),
		ReadPhases:              st.AvgReadPhases(),
		AvgParityOverheadCycles: st.AvgParityOverhead(),
		RequestsDone:            st.RequestsDone,
		Partial:                 st.Partial,
	}
}

// ParityCacheResult is the Figure-13 measurement for one benchmark.
type ParityCacheResult = perfsim.ParityCacheResult

// MeasureParityCaching simulates on-demand Dimension-1 parity caching in
// the LLC and returns the parity-update hit rate (Figure 13).
func MeasureParityCaching(b Benchmark, requests int, seed int64) ParityCacheResult {
	return MeasureParityCachingContext(context.Background(), b, requests, seed)
}

// MeasureParityCachingContext is MeasureParityCaching under a context: a
// cancelled measurement returns the hit statistics gathered so far,
// marked Partial.
func MeasureParityCachingContext(ctx context.Context, b Benchmark, requests int, seed int64) ParityCacheResult {
	if requests == 0 {
		requests = 200000
	}
	return perfsim.ParityCacheHitRateContext(ctx, b, 8<<20, 8, requests, seed)
}
