// Package citadel is a from-scratch reproduction of "Citadel: Efficiently
// Protecting Stacked Memory from Large Granularity Failures" (Nair, Roberts,
// Qureshi — MICRO 2014).
//
// Citadel lets a 3D-stacked DRAM keep each cache line in a single bank —
// preserving bank-level parallelism and activation power — while tolerating
// large-granularity failures (columns, rows, banks, and TSVs). It combines
// three mechanisms:
//
//   - TSV-SWAP: runtime repair of faulty through-silicon vias using
//     stand-by TSVs carved from the existing data-TSV pool.
//   - 3DP (Tri-Dimensional Parity): CRC-32 detection per line plus XOR
//     parity in three orthogonal dimensions for correction.
//   - DDS (Dynamic Dual-granularity Sparing): permanent faults are spared
//     at row or bank granularity to stop fault accumulation.
//
// The package offers three entry points:
//
//   - SimulateReliability runs FaultSim-style Monte Carlo lifetime studies
//     for any protection Scheme (the paper's Figures 4, 9, 14, 18, 19).
//   - SimulatePerformance runs the queueing performance/power model over
//     synthetic SPEC/PARSEC/BioBench workloads (Figures 5, 13, 15, 16).
//   - NewController builds a bit-accurate functional model of the Citadel
//     pipeline (CRC → TSV-SWAP → 3DP → DDS) with fault injection.
package citadel

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ecc"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/obs/trace"
	"repro/internal/rare"
	"repro/internal/scenario"
	"repro/internal/sparing"
	"repro/internal/stack"
)

// Config is the stacked-memory geometry (see DefaultConfig for the paper's
// Table II baseline).
type Config = stack.Config

// DefaultConfig returns the paper's baseline system: two 8 GB stacks of
// eight 8 Gb data dies plus one metadata die each.
func DefaultConfig() Config { return stack.DefaultConfig() }

// Striping selects the cache-line data layout.
type Striping = stack.Striping

// Striping layouts (paper §II-D).
const (
	SameBank       = stack.SameBank
	AcrossBanks    = stack.AcrossBanks
	AcrossChannels = stack.AcrossChannels
)

// FITRates holds per-die failure rates; Table1Rates reproduces the paper's
// Table I for 8 Gb dies.
type FITRates = fault.Rates

// Table1Rates returns the paper's Table I failure rates (no TSV faults;
// use WithTSV for the sensitivity sweep).
func Table1Rates() FITRates { return fault.Table1() }

// Scheme enumerates the protection schemes the paper evaluates.
type Scheme int

const (
	// SchemeNone is the unprotected baseline.
	SchemeNone Scheme = iota
	// SchemeSymbol8SameBank: strong 8-bit symbol code, line in one bank.
	SchemeSymbol8SameBank
	// SchemeSymbol8AcrossBanks: symbol code, line striped across the banks
	// of one channel.
	SchemeSymbol8AcrossBanks
	// SchemeSymbol8AcrossChannels: symbol code, line striped across
	// channels (the ChipKill-like baseline of Figures 14/18).
	SchemeSymbol8AcrossChannels
	// Scheme1DP: parity bank only.
	Scheme1DP
	// Scheme2DP: Dimensions 1+2.
	Scheme2DP
	// Scheme3DP: full Tri-Dimensional Parity.
	Scheme3DP
	// Scheme3DPDDS: 3DP plus Dynamic Dual-granularity Sparing.
	Scheme3DPDDS
	// SchemeCitadel: TSV-SWAP + 3DP + DDS (the full proposal).
	SchemeCitadel
	// SchemeBCH6EC7ED: 6-bit-correct/7-bit-detect BCH per line (§VIII-F).
	SchemeBCH6EC7ED
	// SchemeRAID5: RAID-5-style parity across channels (§VIII-F).
	SchemeRAID5
	// Scheme2DECC: prior-work 2D error coding over 32x32 cell tiles
	// (§VIII-E); small-granularity protection only.
	Scheme2DECC
	numSchemes
)

// String names the scheme as in the paper's figures.
func (s Scheme) String() string {
	switch s {
	case SchemeNone:
		return "None"
	case SchemeSymbol8SameBank:
		return "Symbol8/Same-Bank"
	case SchemeSymbol8AcrossBanks:
		return "Symbol8/Across-Banks"
	case SchemeSymbol8AcrossChannels:
		return "Symbol8/Across-Channels"
	case Scheme1DP:
		return "1DP"
	case Scheme2DP:
		return "2DP"
	case Scheme3DP:
		return "3DP"
	case Scheme3DPDDS:
		return "3DP+DDS"
	case SchemeCitadel:
		return "Citadel"
	case SchemeBCH6EC7ED:
		return "BCH-6EC7ED"
	case SchemeRAID5:
		return "RAID-5"
	case Scheme2DECC:
		return "2D-ECC"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Schemes lists every scheme.
func Schemes() []Scheme {
	out := make([]Scheme, 0, int(numSchemes))
	for s := SchemeNone; s < numSchemes; s++ {
		out = append(out, s)
	}
	return out
}

// buildPolicy constructs the engine policy of a named scheme through the
// scenario registry, optionally forcing TSV-SWAP on (as the paper does
// for all systems after §V-D). A scheme that natively uses TSV-SWAP
// (Citadel) keeps its plain name; forcing it onto any other scheme
// appends "+TSV-Swap", exactly as the pre-registry hand-wiring named
// its policies.
func buildPolicy(name string, cfg Config, params scenario.Params, tsvSwap bool) (faultsim.Policy, error) {
	p, err := scenario.BuildScheme(name, cfg, params)
	if err != nil {
		return faultsim.Policy{}, err
	}
	native := p.UseTSVSwap
	if tsvSwap {
		p.UseTSVSwap = true
	}
	if p.UseTSVSwap && !native {
		p.Name += "+TSV-Swap"
	}
	return p, nil
}

// policy translates a Scheme into an engine policy via the registry.
func (s Scheme) policy(cfg Config, tsvSwap bool) faultsim.Policy {
	p, err := buildPolicy(s.String(), cfg, nil, tsvSwap)
	if err != nil {
		// Out-of-range enum values keep the historical fallback: an
		// unprotected baseline reported under the enum's name.
		p = faultsim.Policy{Predicate: ecc.NoProtection{}, Name: s.String()}
		if tsvSwap {
			p.UseTSVSwap = true
			p.Name += "+TSV-Swap"
		}
	}
	return p
}

// ReliabilityOptions configures a Monte Carlo reliability study.
type ReliabilityOptions struct {
	// Config is the geometry (default: DefaultConfig).
	Config Config
	// Rates are the FIT rates (default: Table1Rates).
	Rates FITRates
	// Trials is the Monte Carlo trial count (default 100000).
	Trials int
	// LifetimeYears is the evaluated lifetime (default 7).
	LifetimeYears float64
	// ScrubIntervalHours is the scrub period (default 12).
	ScrubIntervalHours float64
	// TSVSwap forces TSV-SWAP on for every scheme (the paper enables it
	// for all systems after §V-D).
	TSVSwap bool
	// Seed makes runs reproducible. See DESIGN.md "Reproducibility
	// contract": equal (Seed, Workers) pairs give bit-identical results.
	Seed int64
	// Workers bounds parallelism; the engine clamps it to
	// [1, GOMAXPROCS] (0 or negative selects GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives periodic run snapshots plus a
	// final one with Done set (see faultsim.Options.Progress).
	Progress func(RunProgress)
	// ProgressInterval throttles Progress callbacks (default 1s).
	ProgressInterval time.Duration
	// RunID correlates progress snapshots, forensic exemplars, metrics,
	// and traces from one logical run.
	RunID string
	// Forensics enables failure forensics: every uncorrectable trial is
	// bucketed into Result.Breakdown by fault-mode combination, and the
	// first MaxExemplars failures are captured as replayable Forensic
	// records with machine-readable reason chains.
	Forensics bool
	// MaxExemplars bounds the captured exemplars (default 8 when
	// Forensics is set).
	MaxExemplars int
	// Trace, when non-nil, records sampled per-trial spans and failure
	// instants into the flight recorder.
	Trace *trace.Recorder
	// RareEvent switches the run to the importance-sampled rare-event
	// engine (internal/rare): fault arrivals are biased toward
	// large-granularity classes and unbiased by likelihood ratios, so
	// ~1e-6-and-below tails resolve in orders of magnitude fewer trials.
	// The returned Result is Weighted. Incompatible with Forensics and
	// Trace (the rare engine does not capture exemplars or spans).
	RareEvent bool
	// BiasFactor is the rare-event rate inflation (>= 1; 0 selects
	// DefaultBiasFactor). Only meaningful with RareEvent.
	BiasFactor float64
	// FaultModel names the registered arrival-process plugin ("" selects
	// scenario.DefaultFaultModel, the Poisson FIT-rate process — bit-
	// identical to runs predating the field). Non-default models are
	// incompatible with RareEvent: the importance-sampled engine biases
	// Poisson rates and cannot reweight an arbitrary arrival process.
	FaultModel string
	// ScenarioParams are plugin knobs shared by the scheme and fault-model
	// plugins (flat namespace; keys validated against the union of both
	// plugins' declared parameters). Nil runs every plugin at its
	// documented defaults.
	ScenarioParams map[string]float64
}

// DefaultBiasFactor is the rare-event engine's default rate inflation.
const DefaultBiasFactor = rare.DefaultBiasFactor

// Result is the outcome of a reliability run.
type Result = faultsim.Result

// RunProgress is a point-in-time snapshot of a reliability run.
type RunProgress = faultsim.Progress

// withDefaults fills zero fields. Trials and ScrubIntervalHours are
// filled here to match their doc comments; faultsim.Options.withDefaults
// applies the same values and remains the single source of truth for
// callers that bypass this package.
func (o ReliabilityOptions) withDefaults() ReliabilityOptions {
	if o.Config.Stacks == 0 {
		o.Config = DefaultConfig()
	}
	zero := FITRates{}
	if o.Rates == zero {
		o.Rates = Table1Rates()
	}
	if o.Trials == 0 {
		o.Trials = 100000
	}
	if o.LifetimeYears == 0 {
		o.LifetimeYears = 7
	}
	if o.ScrubIntervalHours == 0 {
		o.ScrubIntervalHours = faultsim.DefaultScrubIntervalHours
	}
	return o
}

// engineOptions converts to the internal engine options.
func (o ReliabilityOptions) engineOptions() faultsim.Options {
	return faultsim.Options{
		Config:             o.Config,
		Rates:              o.Rates,
		Trials:             o.Trials,
		LifetimeHours:      o.LifetimeYears * fault.HoursPerYear,
		ScrubIntervalHours: o.ScrubIntervalHours,
		Seed:               o.Seed,
		Workers:            o.Workers,
		Progress:           o.Progress,
		ProgressInterval:   o.ProgressInterval,
		RunID:              o.RunID,
		Forensics:          o.Forensics,
		MaxExemplars:       o.MaxExemplars,
		Trace:              o.Trace,
	}
}

// scenarioSetup validates the scenario selection and builds the policy
// and engine options for a named scheme, routing the arrival process
// through the fault-model registry. opts must already have defaults
// applied.
func (o ReliabilityOptions) scenarioSetup(schemeName string) (faultsim.Policy, faultsim.Options, error) {
	params := scenario.Params(o.ScenarioParams)
	if err := scenario.ValidateParams(schemeName, o.FaultModel, params); err != nil {
		return faultsim.Policy{}, faultsim.Options{}, err
	}
	pol, err := buildPolicy(schemeName, o.Config, params, o.TSVSwap)
	if err != nil {
		return faultsim.Policy{}, faultsim.Options{}, err
	}
	arrivals, err := scenario.BuildFaultModel(o.FaultModel, o.Config, o.Rates, params)
	if err != nil {
		return faultsim.Policy{}, faultsim.Options{}, err
	}
	eo := o.engineOptions()
	eo.NewArrivals = arrivals
	return pol, eo, nil
}

// rareEventCompatible rejects scenario selections the importance-sampled
// engine cannot honor: it builds its own biased Poisson sampler, so any
// other arrival process would be silently ignored.
func (o ReliabilityOptions) rareEventCompatible() error {
	if o.FaultModel != "" && o.FaultModel != scenario.DefaultFaultModel {
		return fmt.Errorf("citadel: rare-event engine supports only the %q fault model, not %q",
			scenario.DefaultFaultModel, o.FaultModel)
	}
	return nil
}

// SimulateScenarioReliability runs a reliability study for a registered
// scheme/fault-model pair selected by name; it cannot be interrupted
// (see SimulateScenarioReliabilityContext).
func SimulateScenarioReliability(opts ReliabilityOptions, schemeName string) (Result, error) {
	return SimulateScenarioReliabilityContext(context.Background(), opts, schemeName)
}

// SimulateScenarioReliabilityContext is the name-based core every
// reliability path runs through: the scheme plugin builds the policy,
// the fault-model plugin builds the arrival process, and the engine
// simulates them. For registered enum schemes under the default fault
// model it is bit-identical to SimulateReliabilityContext. Errors are
// configuration errors (unknown plugin, bad parameters); a cancelled
// context still returns a partial Result with a nil error.
func SimulateScenarioReliabilityContext(ctx context.Context, opts ReliabilityOptions, schemeName string) (Result, error) {
	opts = opts.withDefaults()
	if opts.RareEvent {
		if err := opts.rareEventCompatible(); err != nil {
			return Result{}, err
		}
		if err := scenario.ValidateParams(schemeName, opts.FaultModel, scenario.Params(opts.ScenarioParams)); err != nil {
			return Result{}, err
		}
		pol, err := buildPolicy(schemeName, opts.Config, scenario.Params(opts.ScenarioParams), opts.TSVSwap)
		if err != nil {
			return Result{}, err
		}
		return rare.RunISContext(ctx, rare.Options{
			Options:    opts.engineOptions(),
			BiasFactor: opts.BiasFactor,
		}, pol), nil
	}
	pol, eo, err := opts.scenarioSetup(schemeName)
	if err != nil {
		return Result{}, err
	}
	return faultsim.RunContext(ctx, eo, pol), nil
}

// SimulateScenarioReliabilityAdaptive is the adaptive (failure-count-
// targeted) variant of SimulateScenarioReliability.
func SimulateScenarioReliabilityAdaptive(opts ReliabilityOptions, schemeName string, targetFailures, maxTrials int) (Result, error) {
	return SimulateScenarioReliabilityAdaptiveContext(context.Background(), opts, schemeName, targetFailures, maxTrials)
}

// SimulateScenarioReliabilityAdaptiveContext adds trials in batches until
// targetFailures or maxTrials, with the scheme and arrival process
// resolved through the scenario registry. Like the enum-based adaptive
// path it always uses the plain Monte Carlo engine (RareEvent is
// ignored).
func SimulateScenarioReliabilityAdaptiveContext(ctx context.Context, opts ReliabilityOptions, schemeName string, targetFailures, maxTrials int) (Result, error) {
	opts = opts.withDefaults()
	pol, eo, err := opts.scenarioSetup(schemeName)
	if err != nil {
		return Result{}, err
	}
	return faultsim.RunAdaptiveContext(ctx, faultsim.AdaptiveOptions{
		Options:        eo,
		TargetFailures: targetFailures,
		MaxTrials:      maxTrials,
	}, pol), nil
}

// SimulateReliability estimates the probability of system failure for one
// scheme under the given options; it cannot be interrupted (see
// SimulateReliabilityContext).
func SimulateReliability(opts ReliabilityOptions, scheme Scheme) Result {
	return SimulateReliabilityContext(context.Background(), opts, scheme)
}

// SimulateReliabilityContext estimates the probability of system failure
// for one scheme. Cancelling ctx stops the Monte Carlo workers within
// one trial batch; the completed trials are returned as a Result marked
// Partial (the estimate stays unbiased, just wider). With
// opts.RareEvent the trial budget runs through the importance-sampled
// engine instead and the Result comes back Weighted.
func SimulateReliabilityContext(ctx context.Context, opts ReliabilityOptions, scheme Scheme) Result {
	opts = opts.withDefaults()
	return runOne(ctx, opts, scheme)
}

// runOne dispatches one scheme to the name-based core. Out-of-range enum
// values (not in the registry) keep the historical unprotected-baseline
// fallback; other configuration errors (an unknown fault model, bad
// scenario parameters) surface as a zero-trial Result carrying the error,
// since the enum signatures predate error returns.
func runOne(ctx context.Context, opts ReliabilityOptions, scheme Scheme) Result {
	if _, ok := scenario.SchemeByName(scheme.String()); !ok {
		pol := scheme.policy(opts.Config, opts.TSVSwap)
		if opts.RareEvent {
			return rare.RunISContext(ctx, rare.Options{
				Options:    opts.engineOptions(),
				BiasFactor: opts.BiasFactor,
			}, pol)
		}
		return faultsim.RunContext(ctx, opts.engineOptions(), pol)
	}
	res, err := SimulateScenarioReliabilityContext(ctx, opts, scheme.String())
	if err != nil {
		return Result{Policy: scheme.String(), Err: err, Partial: true}
	}
	return res
}

// CompareReliability runs several schemes under identical options.
func CompareReliability(opts ReliabilityOptions, schemes ...Scheme) []Result {
	return CompareReliabilityContext(context.Background(), opts, schemes...)
}

// CompareReliabilityContext runs several schemes under identical options.
// Once ctx is cancelled, the in-flight scheme returns a partial Result
// and the remaining schemes return immediately with zero trials, all
// marked Partial.
func CompareReliabilityContext(ctx context.Context, opts ReliabilityOptions, schemes ...Scheme) []Result {
	opts = opts.withDefaults()
	out := make([]Result, len(schemes))
	for i, s := range schemes {
		out[i] = runOne(ctx, opts, s)
	}
	return out
}

// SimulateReliabilityAdaptive adds trials in batches until targetFailures
// failures are observed (tight relative confidence on rare-event schemes
// like Citadel) or maxTrials is reached — the paper's "more trials for
// schemes that show lower failure rates" methodology (§III-B).
func SimulateReliabilityAdaptive(opts ReliabilityOptions, scheme Scheme, targetFailures, maxTrials int) Result {
	return SimulateReliabilityAdaptiveContext(context.Background(), opts, scheme, targetFailures, maxTrials)
}

// SimulateReliabilityAdaptiveContext is SimulateReliabilityAdaptive under
// a context: cancellation stops the batch loop and returns the trials
// accumulated so far as a Result marked Partial.
func SimulateReliabilityAdaptiveContext(ctx context.Context, opts ReliabilityOptions, scheme Scheme, targetFailures, maxTrials int) Result {
	opts = opts.withDefaults()
	if _, ok := scenario.SchemeByName(scheme.String()); ok {
		res, err := SimulateScenarioReliabilityAdaptiveContext(ctx, opts, scheme.String(), targetFailures, maxTrials)
		if err != nil {
			return Result{Policy: scheme.String(), Err: err, Partial: true}
		}
		return res
	}
	return faultsim.RunAdaptiveContext(ctx, faultsim.AdaptiveOptions{
		Options:        opts.engineOptions(),
		TargetFailures: targetFailures,
		MaxTrials:      maxTrials,
	}, scheme.policy(opts.Config, opts.TSVSwap))
}

// SplitResult is a multilevel-splitting reliability estimate — the
// cross-validation counterpart of the importance-sampled engine.
type SplitResult = rare.SplitResult

// SimulateReliabilitySplit estimates failure probability by multilevel
// splitting on the number of simultaneously live faults, using
// opts.Trials trajectories per stage at the given levels (nil selects
// the default [1, 2]). It shares no bias machinery with the
// importance-sampled path, so agreement between the two is a meaningful
// check; it cannot be interrupted (see SimulateReliabilitySplitContext).
func SimulateReliabilitySplit(opts ReliabilityOptions, scheme Scheme, levels []int) SplitResult {
	return SimulateReliabilitySplitContext(context.Background(), opts, scheme, levels)
}

// SimulateReliabilitySplitContext is SimulateReliabilitySplit under a
// context: cancellation abandons the run and returns a SplitResult
// marked Partial.
func SimulateReliabilitySplitContext(ctx context.Context, opts ReliabilityOptions, scheme Scheme, levels []int) SplitResult {
	opts = opts.withDefaults()
	return rare.RunSplitContext(ctx, rare.SplitOptions{
		Options: opts.engineOptions(),
		Levels:  levels,
	}, scheme.policy(opts.Config, opts.TSVSwap))
}

// FaultCensus tallies permanent-fault anatomy over lifetimes: the bimodal
// rows-per-faulty-bank histogram (Figure 17) and the failed-banks-per-system
// distribution (Table III).
type FaultCensus = faultsim.Census

// RunFaultCensus performs the census behind Figure 17 and Table III.
func RunFaultCensus(opts ReliabilityOptions) FaultCensus {
	return RunFaultCensusContext(context.Background(), opts)
}

// RunFaultCensusContext is RunFaultCensus under a context: a cancelled
// census returns the tallies gathered so far, marked Partial.
func RunFaultCensusContext(ctx context.Context, opts ReliabilityOptions) FaultCensus {
	opts = opts.withDefaults()
	return faultsim.RunCensusContext(ctx, opts.engineOptions(), opts.TSVSwap)
}

// StorageOverhead reports Citadel's storage budget (paper §VII-E): the
// metadata-die fraction, the parity-bank fraction, and the on-chip SRAM
// bytes for Dimension-2/3 parity plus the DDS tables.
type StorageOverhead struct {
	MetadataFraction   float64 // extra DRAM for the metadata die
	ParityBankFraction float64 // one data bank dedicated to Dim-1 parity
	SRAMBytes          int     // on-chip parity rows + RRT/BRT
}

// Total returns the total DRAM storage overhead fraction.
func (s StorageOverhead) Total() float64 { return s.MetadataFraction + s.ParityBankFraction }

// ComputeStorageOverhead evaluates the overhead accounting for a geometry.
func ComputeStorageOverhead(cfg Config) StorageOverhead {
	dim23Rows := (cfg.DataDies + cfg.ECCDies) + cfg.BanksPerDie // 9 + 8 rows
	return StorageOverhead{
		MetadataFraction:   float64(cfg.ECCDies) / float64(cfg.DataDies),
		ParityBankFraction: 1 / float64(cfg.DataDies*cfg.BanksPerDie),
		SRAMBytes:          dim23Rows*cfg.RowBytes + sparing.OverheadBits(cfg)/8,
	}
}
