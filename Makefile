# Developer entry points. `make check` is the tier-1 gate: build + vet +
# full tests, plus the race detector over the -short suite (the heavy
# Monte Carlo tests are gated behind -short so the race pass stays within
# CI budget; see skipInShort in internal/faultsim).

GO ?= go

.PHONY: all build vet test race check bench clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled pass over the fast suite. -short skips the statistically
# heavy Monte Carlo tests (tens of seconds each under the race detector)
# while still racing every engine, the HTTP server, and the cancellation
# paths.
race:
	$(GO) test -race -short ./...

check: build vet test race

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
