# Developer entry points. `make check` is the tier-1 gate: build + vet +
# full tests, plus the race detector over the -short suite (the heavy
# Monte Carlo tests are gated behind -short so the race pass stays within
# CI budget; see skipInShort in internal/faultsim).

GO ?= go

.PHONY: all build vet staticcheck test race check stress-jobs stress-cluster stress-stream bench bench.out bench-check bench-all clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Extra static analysis when the tool is available. Gated on `command -v`
# so `make check` never downloads anything; CI installs staticcheck
# explicitly (see .github/workflows/ci.yml).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

# Race-enabled pass over the fast suite. -short skips the statistically
# heavy Monte Carlo tests (tens of seconds each under the race detector)
# while still racing every engine, the HTTP server, and the cancellation
# paths.
race:
	$(GO) test -race -short ./...

# Orchestrator stress: 100 concurrent job submissions with random
# cancellations under the race detector. Skipped by -short, so the
# regular race pass doesn't pay for it; CI runs it as its own job.
stress-jobs:
	$(GO) test -race -run TestStressSubmitCancel -count=1 ./internal/jobs/

# Cluster chaos harness: a distributed campaign under the race detector
# while workers are randomly SIGKILLed, heartbeats dropped, and every
# chunk result delivered twice; the result must stay bit-identical to a
# quiet local run. Skipped by -short; CI runs it as its own job.
stress-cluster:
	$(GO) test -race -run TestChaosCampaign -count=1 -v ./internal/cluster/

# Streaming result-plane stress: 10k SSE subscribers on one campaign with
# random disconnects and a deliberately slow reader, under the race
# detector; every survivor must observe the terminal frame and the hub
# must end with zero subscribers. Skipped by -short; CI runs it as its
# own job.
stress-stream:
	$(GO) test -race -run TestStressStreamSubscribers -count=1 -v -timeout=10m ./internal/api/

check: build vet staticcheck test race scenario-smoke

# Scenario-registry smoke: the catalog must print (every plugin's init
# ran and validated) and a short rowhammer campaign must survive the
# race detector end-to-end through the public simulation pipeline.
scenario-smoke:
	$(GO) run ./cmd/citadel-sim -list-scenarios >/dev/null
	$(GO) test -race -run 'TestRowhammerEndToEnd' -count=1 ./internal/scenario/

# Engine performance gate: the Monte Carlo trial-loop microbenchmarks
# (incremental vs batch evaluation, CRC variants, and the Figure-4 striping
# study) funneled through cmd/benchjson into a benchstat-compatible JSON
# report. `jq -r '.raw[]' BENCH_faultsim.json | benchstat /dev/stdin` renders
# it; keep two reports around to benchstat before/after a change.
bench.out:
	$(GO) test -run xxx -bench 'BenchmarkTrials|BenchmarkTrialStateRun|BenchmarkParityStateAdd' \
		-benchmem ./internal/faultsim/ > bench.out
	$(GO) test -run xxx -bench 'BenchmarkCRC' ./internal/crc/ >> bench.out
	$(GO) test -run xxx -bench 'BenchmarkRareEventTail' ./internal/rare/ >> bench.out
	$(GO) test -run xxx -bench 'BenchmarkRowhammerArrivals' -benchmem ./internal/scenario/ >> bench.out
	$(GO) test -run xxx -bench 'BenchmarkMonteCarloTrialThroughput|BenchmarkFig4StripingReliability' \
		-benchmem . >> bench.out
	$(GO) test -run xxx -bench 'BenchmarkBroadcastFanout' -benchmem ./internal/stream/ >> bench.out
	$(GO) test -run xxx -bench 'BenchmarkJobPoll|BenchmarkAccessSlices' -benchmem \
		./internal/api/ ./internal/perfsim/ >> bench.out

bench: bench.out
	$(GO) run ./cmd/benchjson -o BENCH_faultsim.json < bench.out
	@rm -f bench.out
	@echo wrote BENCH_faultsim.json

# Regression gate: rerun the bench groups and fail on a >10% trials/s drop
# or any allocs/op increase vs the committed BENCH_faultsim.json baseline.
# Refresh the baseline with `make bench` after an intentional change.
bench-check: bench.out
	$(GO) run ./cmd/benchjson -compare BENCH_faultsim.json < bench.out
	@rm -f bench.out

# Full benchmark sweep (every table/figure regeneration; slow).
bench-all:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
