package citadel

import (
	"fmt"

	"repro/internal/ecc"
	"repro/internal/faultsim"
)

// Forensic is a replayable post-mortem record of one uncorrectable trial:
// seed coordinates, the live fault set at failure, and a machine-readable
// reason chain naming the correction mechanisms that were defeated.
type Forensic = faultsim.Forensic

// Reason is one entry of a forensic reason chain.
type Reason = ecc.Reason

// ForensicsReport is the self-contained failure-forensics document written
// by `citadel-sim -forensics out.json` and replayed by
// `citadel-repro -forensics out.json`: it carries both the forensic records
// and every run parameter needed to reproduce them.
type ForensicsReport struct {
	RunID              string         `json:"runId,omitempty"`
	Scheme             string         `json:"scheme"`
	Seed               int64          `json:"seed"`
	Workers            int            `json:"workers"`
	Trials             int            `json:"trials"`
	LifetimeYears      float64        `json:"lifetimeYears"`
	ScrubIntervalHours float64        `json:"scrubIntervalHours"`
	TSVFIT             float64        `json:"tsvFit"`
	TSVSwap            bool           `json:"tsvSwap"`
	Failures           int            `json:"failures"`
	Breakdown          map[string]int `json:"breakdown,omitempty"`
	Exemplars          []Forensic     `json:"exemplars,omitempty"`
}

// NewForensicsReport assembles the report for a completed forensics run.
func NewForensicsReport(opts ReliabilityOptions, scheme Scheme, res Result) ForensicsReport {
	opts = opts.withDefaults()
	return ForensicsReport{
		RunID:              opts.RunID,
		Scheme:             scheme.String(),
		Seed:               opts.Seed,
		Workers:            opts.Workers,
		Trials:             res.Trials,
		LifetimeYears:      opts.LifetimeYears,
		ScrubIntervalHours: opts.ScrubIntervalHours,
		TSVFIT:             opts.Rates.TSVPerDie,
		TSVSwap:            opts.TSVSwap,
		Failures:           res.Failures,
		Breakdown:          res.Breakdown,
		Exemplars:          res.Exemplars,
	}
}

// Options reconstructs the reliability options a report's exemplars replay
// under. Geometry and non-TSV rates use the defaults; runs with custom
// geometry must rebuild ReliabilityOptions themselves.
func (r ForensicsReport) Options() ReliabilityOptions {
	rates := Table1Rates()
	rates.TSVPerDie = r.TSVFIT
	return ReliabilityOptions{
		Rates:              rates,
		Trials:             r.Trials,
		LifetimeYears:      r.LifetimeYears,
		ScrubIntervalHours: r.ScrubIntervalHours,
		TSVSwap:            r.TSVSwap,
		Seed:               r.Seed,
		Workers:            r.Workers,
		RunID:              r.RunID,
	}.withDefaults()
}

// SchemeByName resolves a scheme from its String() name (as recorded in a
// ForensicsReport).
func SchemeByName(name string) (Scheme, bool) {
	for _, s := range Schemes() {
		if s.String() == name {
			return s, true
		}
	}
	return SchemeNone, false
}

// ReplayExemplar re-executes the exemplar's trial from its recorded seed
// coordinates under opts and scheme, returning the reproduced forensic
// record. ok is false when the replayed trial does not fail — the
// options/scheme no longer match the recording.
func ReplayExemplar(opts ReliabilityOptions, scheme Scheme, ex Forensic) (Forensic, bool) {
	opts = opts.withDefaults()
	return faultsim.ReplayForensic(opts.engineOptions(), scheme.policy(opts.Config, opts.TSVSwap), ex)
}

// VerifyReport replays every exemplar of a report and returns an error
// describing the first divergence (nil when all exemplars reproduce their
// recorded fault sets and verdicts exactly).
func VerifyReport(r ForensicsReport) error {
	scheme, ok := SchemeByName(r.Scheme)
	if !ok {
		return fmt.Errorf("unknown scheme %q", r.Scheme)
	}
	opts := r.Options()
	for i, ex := range r.Exemplars {
		got, ok := ReplayExemplar(opts, scheme, ex)
		if !ok {
			return fmt.Errorf("exemplar %d (%s) did not reproduce a failure", i, ex)
		}
		if err := diffForensic(got, ex); err != nil {
			return fmt.Errorf("exemplar %d diverges: %w", i, err)
		}
	}
	return nil
}

// diffForensic compares the replay-relevant fields of two records.
func diffForensic(got, want Forensic) error {
	if got.FailureHours != want.FailureHours || got.Cause != want.Cause || got.Mode != want.Mode {
		return fmt.Errorf("verdict differs: got (%.1fh %s %s), want (%.1fh %s %s)",
			got.FailureHours, got.Cause, got.Mode, want.FailureHours, want.Cause, want.Mode)
	}
	if len(got.Faults) != len(want.Faults) {
		return fmt.Errorf("fault count differs: got %d, want %d", len(got.Faults), len(want.Faults))
	}
	for i := range got.Faults {
		if got.Faults[i] != want.Faults[i] {
			return fmt.Errorf("fault %d differs: got %v, want %v", i, got.Faults[i], want.Faults[i])
		}
	}
	if len(got.Reasons) != len(want.Reasons) {
		return fmt.Errorf("reason count differs: got %v, want %v", got.Reasons, want.Reasons)
	}
	for i := range got.Reasons {
		if got.Reasons[i] != want.Reasons[i] {
			return fmt.Errorf("reason %d differs: got %v, want %v", i, got.Reasons[i], want.Reasons[i])
		}
	}
	return nil
}
