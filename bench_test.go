package citadel_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its experiment (at a reduced
// Monte Carlo trial count so `go test -bench=.` completes in minutes) and
// reports the headline metric via b.ReportMetric. Run
//
//	go test -bench=. -benchmem
//
// for the whole evaluation, or cmd/citadel-repro for full-fidelity runs
// with printed tables.

import (
	"math"
	"testing"

	citadel "repro"
	"repro/internal/experiments"
)

// benchOptions keeps benchmark iterations affordable.
func benchOptions() experiments.Options {
	return experiments.Options{Trials: 20000, Requests: 20000, Seed: 42}
}

// runExperiment is the shared driver: regenerate the experiment b.N times.
func runExperiment(b *testing.B, id string) {
	opt := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1FITRates regenerates Table I (FIT rates for 8 Gb dies).
func BenchmarkTable1FITRates(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2Config regenerates Table II (baseline configuration).
func BenchmarkTable2Config(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig4StripingReliability regenerates Figure 4: reliability of the
// 8-bit symbol code under the three striping layouts across TSV FIT rates.
func BenchmarkFig4StripingReliability(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5StripingCost regenerates Figure 5: the execution-time and
// power cost of striping (GMEAN over 38 workloads).
func BenchmarkFig5StripingCost(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig9TSVSwap regenerates Figure 9: TSV-SWAP achieves reliability
// close to a TSV-fault-free system even at 1430 FIT.
func BenchmarkFig9TSVSwap(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig13ParityCaching regenerates Figure 13: the LLC hit rate of
// Dimension-1 parity caching (~85% average).
func BenchmarkFig13ParityCaching(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14ParityDimensions regenerates Figure 14: resilience of
// 1DP/2DP/3DP vs the striped symbol code over years 1-7.
func BenchmarkFig14ParityDimensions(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig15ExecutionTime regenerates Figure 15: per-benchmark
// normalized execution time for 3DP (with and without parity caching) and
// the striped layouts.
func BenchmarkFig15ExecutionTime(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFig16ActivePower regenerates Figure 16: normalized active power
// per suite.
func BenchmarkFig16ActivePower(b *testing.B) { runExperiment(b, "fig16") }

// BenchmarkFig17Bimodal regenerates Figure 17: the bimodal distribution of
// rows needed to spare a faulty bank.
func BenchmarkFig17Bimodal(b *testing.B) { runExperiment(b, "fig17") }

// BenchmarkTable3FailedBanks regenerates Table III: failed banks per
// system among systems with at least one bank failure.
func BenchmarkTable3FailedBanks(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig18CitadelResilience regenerates Figure 18: 3DP+DDS vs the
// symbol-based code (the 700x headline).
func BenchmarkFig18CitadelResilience(b *testing.B) { runExperiment(b, "fig18") }

// BenchmarkFig19StrongCodes regenerates Figure 19: Citadel vs 6EC7ED BCH
// and RAID-5 with no TSV faults.
func BenchmarkFig19StrongCodes(b *testing.B) { runExperiment(b, "fig19") }

// BenchmarkOverhead regenerates the §VII-E storage-overhead accounting.
func BenchmarkOverhead(b *testing.B) { runExperiment(b, "overhead") }

// BenchmarkMonteCarloTrialThroughput measures raw trial throughput of the
// reliability engine for the full Citadel policy — the figure of merit for
// FaultSim-class tools.
func BenchmarkMonteCarloTrialThroughput(b *testing.B) {
	opts := citadel.ReliabilityOptions{
		Rates:   citadel.Table1Rates().WithTSV(1430),
		Trials:  b.N,
		TSVSwap: true,
		Seed:    1,
	}
	b.ResetTimer()
	r := citadel.SimulateReliability(opts, citadel.SchemeCitadel)
	b.ReportMetric(float64(r.Trials)/b.Elapsed().Seconds(), "trials/s")
}

// BenchmarkPerfSimRequestThroughput measures the performance model's
// request throughput.
func BenchmarkPerfSimRequestThroughput(b *testing.B) {
	prof, _ := citadel.BenchmarkByName("mcf")
	b.ResetTimer()
	r := citadel.SimulatePerformance(prof, citadel.PerfOptions{Requests: b.N, Seed: 1})
	if r.Cycles == 0 && b.N > 1000 {
		b.Fatal("simulation produced no cycles")
	}
}

// BenchmarkFunctionalReadHealthy measures the functional controller's
// fault-free read path (CRC verification dominated).
func BenchmarkFunctionalReadHealthy(b *testing.B) {
	ctl, err := citadel.NewController(citadel.TinyConfig())
	if err != nil {
		b.Fatal(err)
	}
	line := make([]byte, ctl.Config().LineBytes)
	if err := ctl.Write(0, line); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctl.Read(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSpareRows sweeps the DDS row budget (the design choice
// behind the paper's "4 rows per bank" rule) and reports the failure
// probability at each budget as a custom metric.
func BenchmarkAblationSpareRows(b *testing.B) {
	// This ablation uses the census distribution rather than full Monte
	// Carlo: the fraction of faulty banks whose row demand exceeds the
	// budget determines how often coarse sparing is needed.
	rates := citadel.Table1Rates()
	rates.BankPermanent *= 50
	rates.RowPermanent *= 50
	opts := citadel.ReliabilityOptions{Rates: rates, Trials: 5000, Seed: 9, TSVSwap: true}
	b.ResetTimer()
	var escape4 float64
	for i := 0; i < b.N; i++ {
		c := citadel.RunFaultCensus(opts)
		total, over := 0, 0
		for rows, n := range c.RowsHistogram {
			total += n
			if rows > 4 {
				over += n
			}
		}
		if total > 0 {
			escape4 = float64(over) / float64(total)
		}
	}
	if !math.IsNaN(escape4) {
		b.ReportMetric(100*escape4, "%banks-needing-bank-spare")
	}
}

// BenchmarkAblationOrganizations re-runs the headline comparison on the
// HBM-, HMC- and Tezzaron-like organizations (paper §II-C).
func BenchmarkAblationOrganizations(b *testing.B) { runExperiment(b, "orgs") }

// BenchmarkAblationScrubInterval sweeps the scrub interval for 3DP and
// 3DP+DDS.
func BenchmarkAblationScrubInterval(b *testing.B) { runExperiment(b, "scrub") }

// BenchmarkAblationDDSBudgets sweeps the RRT/BRT sparing budgets.
func BenchmarkAblationDDSBudgets(b *testing.B) { runExperiment(b, "spares") }

// BenchmarkAblationTSVPool sweeps the stand-by TSV pool size.
func BenchmarkAblationTSVPool(b *testing.B) { runExperiment(b, "tsvpool") }

// BenchmarkAblationParityCacheSensitivity sweeps the Dim-1 parity-cache
// hit rate against 3DP's slowdown.
func BenchmarkAblationParityCacheSensitivity(b *testing.B) { runExperiment(b, "paritysens") }

// BenchmarkAblationPriorWork compares 3DP against the prior 2D-ECC tile
// code (§VIII-E's ~130x claim).
func BenchmarkAblationPriorWork(b *testing.B) { runExperiment(b, "priorwork") }

// BenchmarkAblationBookkeeping contrasts codeword-exact vs device-granular
// ChipKill bookkeeping (recovers Figure 14's 7x under the latter).
func BenchmarkAblationBookkeeping(b *testing.B) { runExperiment(b, "bookkeeping") }

// BenchmarkAblationDensity sweeps projected die densities (8-64 Gb) using
// the paper's §III-A scaling rules.
func BenchmarkAblationDensity(b *testing.B) { runExperiment(b, "density") }
