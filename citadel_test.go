package citadel

import (
	"bytes"
	"context"
	"math"
	"runtime"
	"testing"
	"time"
)

func TestSchemeNames(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Schemes() {
		name := s.String()
		if name == "" || seen[name] {
			t.Errorf("bad or duplicate scheme name %q", name)
		}
		seen[name] = true
	}
	if Scheme(99).String() != "Scheme(99)" {
		t.Error("unknown scheme name wrong")
	}
	if len(Schemes()) != 12 {
		t.Errorf("Schemes() = %d entries, want 12", len(Schemes()))
	}
}

func TestSimulateReliabilityDefaults(t *testing.T) {
	r := SimulateReliability(ReliabilityOptions{Trials: 3000, Seed: 1}, Scheme3DP)
	if r.Trials != 3000 {
		t.Errorf("trials = %d", r.Trials)
	}
	if r.Policy != "3DP" {
		t.Errorf("policy = %q", r.Policy)
	}
	if len(r.FailuresByYear) != 7 {
		t.Errorf("years = %d, want 7 (default lifetime)", len(r.FailuresByYear))
	}
}

func TestCompareReliabilityOrdering(t *testing.T) {
	// Core sanity at boosted rates: None fails most; Citadel least.
	rates := Table1Rates()
	rates.BankPermanent *= 50
	rates.RowPermanent *= 50
	opts := ReliabilityOptions{Rates: rates, Trials: 4000, Seed: 3}
	rs := CompareReliability(opts, SchemeNone, Scheme1DP, Scheme3DP, SchemeCitadel)
	if !(rs[0].Failures >= rs[1].Failures && rs[1].Failures >= rs[2].Failures && rs[2].Failures >= rs[3].Failures) {
		t.Errorf("ordering violated: %v", []int{rs[0].Failures, rs[1].Failures, rs[2].Failures, rs[3].Failures})
	}
	if rs[0].Failures == 0 {
		t.Error("no signal")
	}
}

func TestTSVSwapOptionPropagates(t *testing.T) {
	opts := ReliabilityOptions{
		Rates:   Table1Rates().WithTSV(1430),
		Trials:  4000,
		Seed:    4,
		TSVSwap: true,
	}
	with := SimulateReliability(opts, SchemeSymbol8SameBank)
	opts.TSVSwap = false
	without := SimulateReliability(opts, SchemeSymbol8SameBank)
	if with.Failures >= without.Failures {
		t.Errorf("TSV-Swap did not reduce failures: with=%d without=%d",
			with.Failures, without.Failures)
	}
	if with.Policy == without.Policy {
		t.Error("policy names should distinguish TSV-Swap")
	}
}

func TestStorageOverheadMatchesPaper(t *testing.T) {
	ov := ComputeStorageOverhead(DefaultConfig())
	if math.Abs(ov.MetadataFraction-0.125) > 1e-9 {
		t.Errorf("metadata fraction = %v, want 0.125", ov.MetadataFraction)
	}
	if math.Abs(ov.ParityBankFraction-1.0/64) > 1e-9 {
		t.Errorf("parity bank fraction = %v, want 1/64", ov.ParityBankFraction)
	}
	// Paper §VII-E: ~14% total, ~35KB SRAM.
	if ov.Total() < 0.13 || ov.Total() > 0.15 {
		t.Errorf("total overhead = %v, want ~0.14", ov.Total())
	}
	if ov.SRAMBytes < 30<<10 || ov.SRAMBytes > 40<<10 {
		t.Errorf("SRAM = %d bytes, want ~35KB", ov.SRAMBytes)
	}
}

func TestRunFaultCensus(t *testing.T) {
	rates := Table1Rates()
	rates.BankPermanent *= 100
	c := RunFaultCensus(ReliabilityOptions{Rates: rates, Trials: 2000, Seed: 5, TSVSwap: true})
	if c.FaultyBankTotal() == 0 {
		t.Error("census empty")
	}
}

func TestBenchmarksExposed(t *testing.T) {
	if len(Benchmarks()) != 38 {
		t.Errorf("benchmarks = %d, want 38", len(Benchmarks()))
	}
	if _, ok := BenchmarkByName("mcf"); !ok {
		t.Error("mcf missing")
	}
	if _, ok := BenchmarkByName("nope"); ok {
		t.Error("unknown benchmark found")
	}
}

func TestSimulatePerformanceAPI(t *testing.T) {
	b, _ := BenchmarkByName("gcc")
	base := SimulatePerformance(b, PerfOptions{Requests: 10000, Seed: 1})
	if base.Cycles == 0 || base.ActivePowerWatts <= 0 {
		t.Fatalf("degenerate result: %+v", base)
	}
	striped := SimulatePerformance(b, PerfOptions{
		Striping: AcrossChannels, Requests: 10000, Seed: 1,
	})
	if striped.Cycles <= base.Cycles {
		t.Error("across-channels not slower than baseline for gcc")
	}
	if base.Benchmark != "gcc" {
		t.Errorf("benchmark name = %q", base.Benchmark)
	}
}

func TestProtectionNames(t *testing.T) {
	if NoProtection.String() != "baseline" || Protection3DP.String() != "3DP" ||
		Protection3DPNoCache.String() != "3DP-no-cache" {
		t.Error("protection names wrong")
	}
	if Protection(9).String() != "Protection(9)" {
		t.Error("unknown protection name wrong")
	}
}

func TestMeasureParityCaching(t *testing.T) {
	b, _ := BenchmarkByName("lbm")
	r := MeasureParityCaching(b, 50000, 1)
	if r.ParityProbes == 0 {
		t.Fatal("no parity probes")
	}
	if hr := r.HitRate(); hr < 0 || hr > 1 {
		t.Errorf("hit rate = %v", hr)
	}
}

func TestFunctionalControllerEndToEnd(t *testing.T) {
	ctl, err := NewController(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	line := bytes.Repeat([]byte{0xA5}, ctl.Config().LineBytes)
	if err := ctl.Write(3, line); err != nil {
		t.Fatal(err)
	}
	co := ctl.Config().CoordOfLineIndex(3)
	ctl.InjectFault(RowFault(co.Stack, co.Die, co.Bank, co.Row))
	got, err := ctl.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, line) {
		t.Error("data corrupted after row fault")
	}
	if ctl.Stats().Corrections == 0 {
		t.Error("no correction recorded")
	}
}

func TestFaultConstructors(t *testing.T) {
	cfg := DefaultConfig()
	rf := RowFault(0, 1, 2, 3)
	if rf.Class != FaultRow || !rf.Region.Row.Contains(3) || rf.Region.Row.Contains(4) {
		t.Error("RowFault wrong")
	}
	bf := BankFault(1, 2, 3)
	if bf.Class != FaultBank || bf.Region.Stack != 1 || !bf.Region.Row.Contains(12345) {
		t.Error("BankFault wrong")
	}
	wf := WordFault(0, 0, 0, 0, 130)
	if wf.Class != FaultWord || !wf.Region.Col.Contains(128) || wf.Region.Col.Contains(64) {
		t.Error("WordFault wrong")
	}
	df := DataTSVFault(cfg, 0, 1, 7)
	if df.Class != FaultDataTSV || !df.Region.Col.Contains(7) || !df.Region.Col.Contains(263) {
		t.Error("DataTSVFault wrong")
	}
	af := AddrTSVFault(0, 1, 4)
	if af.Class != FaultAddrTSV || !af.Region.Row.Contains(16) || af.Region.Row.Contains(8) {
		t.Error("AddrTSVFault wrong")
	}
}

func TestReliabilityOptionsEffectiveDefaults(t *testing.T) {
	// Pin the effective defaults promised by the ReliabilityOptions doc
	// comments: a zero-value options struct must actually simulate 100000
	// trials over 7 years with 12-hour scrubs on the Table-II geometry.
	d := ReliabilityOptions{}.withDefaults()
	if d.Trials != 100000 {
		t.Errorf("default Trials = %d, want 100000", d.Trials)
	}
	if d.LifetimeYears != 7 {
		t.Errorf("default LifetimeYears = %v, want 7", d.LifetimeYears)
	}
	if d.ScrubIntervalHours != 12 {
		t.Errorf("default ScrubIntervalHours = %v, want 12", d.ScrubIntervalHours)
	}
	if d.Config.Stacks != DefaultConfig().Stacks {
		t.Errorf("default Config = %+v", d.Config)
	}
	if d.Rates != Table1Rates() {
		t.Errorf("default Rates = %+v", d.Rates)
	}
	// Non-zero fields must pass through untouched.
	o := ReliabilityOptions{Trials: 5, LifetimeYears: 2, ScrubIntervalHours: 1}.withDefaults()
	if o.Trials != 5 || o.LifetimeYears != 2 || o.ScrubIntervalHours != 1 {
		t.Errorf("explicit options overwritten: %+v", o)
	}
}

func TestWorkersClampPropagates(t *testing.T) {
	// Negative worker counts used to fall through to the engine unclamped;
	// they must behave exactly like the GOMAXPROCS default.
	rates := Table1Rates()
	rates.BankPermanent *= 50
	opts := ReliabilityOptions{Rates: rates, Trials: 2000, Seed: 9, Workers: -5}
	r := SimulateReliability(opts, Scheme3DP)
	if r.Trials != 2000 {
		t.Errorf("clamped run completed %d trials, want 2000", r.Trials)
	}
	if r.Partial {
		t.Error("clamped run spuriously partial")
	}
	if runtime.GOMAXPROCS(0) == 1 {
		// Single-CPU: Workers=-5 and Workers=1 share one RNG stream, so
		// the clamp is also observable through identical statistics.
		one := opts
		one.Workers = 1
		if got := SimulateReliability(one, Scheme3DP); got.Failures != r.Failures {
			t.Errorf("Workers=-5 (%d failures) != Workers=1 (%d failures)", r.Failures, got.Failures)
		}
	}
}

func TestSimulateReliabilityContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	r := SimulateReliabilityContext(ctx, ReliabilityOptions{Trials: 4_000_000, Seed: 1}, SchemeNone)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled simulation took %v", elapsed)
	}
	if !r.Partial {
		t.Fatal("cancelled simulation not marked Partial")
	}
	if r.Trials <= 0 || r.Trials >= 4_000_000 {
		t.Errorf("partial Trials = %d", r.Trials)
	}
}

func TestCompareReliabilityContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rs := CompareReliabilityContext(ctx, ReliabilityOptions{Trials: 10000, Seed: 1}, SchemeNone, Scheme3DP)
	if len(rs) != 2 {
		t.Fatalf("results = %d", len(rs))
	}
	for i, r := range rs {
		if !r.Partial || r.Trials != 0 {
			t.Errorf("result %d not an empty partial: %+v", i, r)
		}
	}
}

func TestSimulatePerformanceContextCancel(t *testing.T) {
	b, _ := BenchmarkByName("mcf")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	r := SimulatePerformanceContext(ctx, b, PerfOptions{Requests: 50_000_000, Seed: 1})
	if !r.Partial {
		t.Fatal("cancelled performance run not marked Partial")
	}
	if r.RequestsDone <= 0 || r.RequestsDone >= 50_000_000 {
		t.Errorf("RequestsDone = %d", r.RequestsDone)
	}
}
