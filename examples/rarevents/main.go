// Rare-event analysis: Citadel's failure probability is so low that fixed
// trial counts cannot resolve it. This example uses the adaptive Monte
// Carlo mode (the paper's "more trials for schemes that show lower failure
// rates", §III-B) and inspects the proximate causes of the failures that
// do occur.
package main

import (
	"fmt"
	"sort"
	"time"

	citadel "repro"
)

func main() {
	opts := citadel.ReliabilityOptions{
		Rates:   citadel.Table1Rates().WithTSV(1430),
		TSVSwap: true,
		Trials:  50000, // batch size
		Seed:    11,
	}

	fmt.Println("adaptive Monte Carlo: accumulate trials until 20 failures")
	fmt.Println()
	for _, scheme := range []citadel.Scheme{
		citadel.Scheme3DP,
		citadel.SchemeCitadel,
	} {
		start := time.Now()
		res := citadel.SimulateReliabilityAdaptive(opts, scheme, 20, 2_000_000)
		fmt.Printf("%-16s P(fail,7y) = %-10.3g  (%d failures / %d trials, %.1fs)\n",
			res.Policy, res.Probability(), res.Failures, res.Trials,
			time.Since(start).Seconds())
		// Proximate causes: the fault class whose arrival broke the system.
		type kv struct {
			cause string
			n     int
		}
		var causes []kv
		for c, n := range res.CauseCounts {
			causes = append(causes, kv{c, n})
		}
		sort.Slice(causes, func(i, j int) bool { return causes[i].n > causes[j].n })
		for _, c := range causes {
			fmt.Printf("    %-10s %d\n", c.cause, c.n)
		}
		fmt.Println()
	}
	fmt.Println("3DP's failures come from accumulated bank-scale permanent")
	fmt.Println("faults; DDS (in Citadel) spares them at each scrub, which is")
	fmt.Println("where the extra orders of magnitude come from.")
}
