// Rare-event analysis: well-protected schemes fail so rarely that naive
// Monte Carlo cannot resolve them. This example estimates the same tail
// three ways — naive fixed-budget, adaptive (the paper's "more trials
// for schemes that show lower failure rates", §III-B), and the
// importance-sampled rare-event engine — then inspects the proximate
// causes of the failures that do occur.
package main

import (
	"fmt"
	"sort"
	"time"

	citadel "repro"
)

func main() {
	opts := citadel.ReliabilityOptions{
		Rates:  citadel.Table1Rates(),
		Trials: 200000,
		Seed:   11,
	}
	scheme := citadel.Scheme3DPDDS

	// Naive: at a ~1e-6 tail, 200k trials see zero or one failure — the
	// point estimate is luck and the interval spans two decades. Note a
	// zero-failure run prints a rule-of-three upper bound, not "± 0".
	start := time.Now()
	naive := citadel.SimulateReliability(opts, scheme)
	fmt.Printf("naive      %s  (%.1fs)\n", naive, time.Since(start).Seconds())

	// Importance-sampled: same trial budget, large-granularity fault
	// rates biased up, every failing trial weighted by its likelihood
	// ratio. The estimate is unbiased and the interval is real.
	rare := opts
	rare.RareEvent = true // BiasFactor 0 selects citadel.DefaultBiasFactor
	start = time.Now()
	is := citadel.SimulateReliability(rare, scheme)
	fmt.Printf("rare-event %s  (%.1fs)\n", is, time.Since(start).Seconds())
	fmt.Printf("           worth %.0fx the naive trial budget (effective trials %.3g)\n\n",
		is.EffectiveTrials()/float64(is.Trials), is.EffectiveTrials())

	// Adaptive: the paper's approach — keep adding trials until enough
	// failures accumulate. Works, but pays the full naive cost per
	// failure; TargetMet distinguishes converging from giving up.
	fmt.Println("adaptive Monte Carlo: accumulate trials until 20 failures")
	start = time.Now()
	res := citadel.SimulateReliabilityAdaptive(opts, scheme, 20, 4_000_000)
	fmt.Printf("%-16s P(fail,7y) = %-10.3g (%d failures / %d trials, target met: %v, %.1fs)\n",
		res.Policy, res.Probability(), res.Failures, res.Trials,
		res.TargetMet, time.Since(start).Seconds())

	// Proximate causes: the fault class whose arrival broke the system.
	type kv struct {
		cause string
		n     int
	}
	var causes []kv
	for c, n := range res.CauseCounts {
		causes = append(causes, kv{c, n})
	}
	sort.Slice(causes, func(i, j int) bool { return causes[i].n > causes[j].n })
	for _, c := range causes {
		fmt.Printf("    %-10s %d\n", c.cause, c.n)
	}
	fmt.Println()
	fmt.Println("3DP+DDS's residual failures come from fault pairs that land")
	fmt.Println("inside one scrub interval, before sparing can react; the")
	fmt.Println("rare-event engine resolves that tail at a fraction of the")
	fmt.Println("trial budget the adaptive loop needs.")
}
