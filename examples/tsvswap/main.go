// TSV-SWAP demo: break data and address TSVs at runtime and watch the
// controller detect the corruption through CRC-32, implicate the TSVs via
// the fixed-row probe, and redirect traffic to stand-by TSVs — all without
// manufacturer-provided spares (paper section V).
package main

import (
	"bytes"
	"fmt"
	"log"

	citadel "repro"
)

func main() {
	ctl, err := citadel.NewController(citadel.TinyConfig())
	if err != nil {
		log.Fatal(err)
	}
	cfg := ctl.Config()

	// Fill channel 0 with data.
	var idxs []int64
	for idx := int64(0); idx < cfg.TotalLines(); idx++ {
		if cfg.CoordOfLineIndex(idx).Die != 0 {
			continue
		}
		line := bytes.Repeat([]byte{byte(idx % 251)}, cfg.LineBytes)
		if err := ctl.Write(idx, line); err != nil {
			log.Fatal(err)
		}
		idxs = append(idxs, idx)
	}
	fmt.Printf("wrote %d lines into channel 0\n", len(idxs))

	// A faulty data TSV corrupts 2 bits of EVERY line transferred on the
	// channel — a multi-bank failure from a single via.
	fmt.Println("\ninjecting data-TSV fault (TSV 7) on channel 0")
	ctl.InjectFault(citadel.DataTSVFault(cfg, 0, 0, 7))

	got, err := ctl.Read(idxs[0])
	if err != nil {
		log.Fatal(err)
	}
	want := bytes.Repeat([]byte{byte(idxs[0] % 251)}, cfg.LineBytes)
	if !bytes.Equal(got, want) {
		log.Fatal("TSV-SWAP failed to restore the data")
	}
	s := ctl.Stats()
	fmt.Printf("first read: CRC mismatch detected=%d, TSV repairs=%d, data intact\n",
		s.CRCMismatches, s.TSVRepairs)

	// An address TSV fault is far more severe: half of the channel's rows
	// become unreachable, returning the WRONG row's data. Only the
	// address-seeded CRC catches that.
	fmt.Println("\ninjecting addr-TSV fault (row address bit 2) on channel 0")
	ctl.InjectFault(citadel.AddrTSVFault(0, 0, 2))

	var checked int
	for _, idx := range idxs {
		co := cfg.CoordOfLineIndex(idx)
		if co.Row&(1<<2) == 0 {
			continue // reachable half
		}
		got, err := ctl.Read(idx)
		if err != nil {
			log.Fatalf("line %d: %v", idx, err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(idx % 251)}, cfg.LineBytes)) {
			log.Fatalf("line %d: wrong data after addr-TSV repair", idx)
		}
		checked++
	}
	s = ctl.Stats()
	fmt.Printf("verified %d lines in the previously unreachable half\n", checked)
	fmt.Printf("totals: CRC mismatches=%d, TSV repairs=%d, 3DP corrections=%d\n",
		s.CRCMismatches, s.TSVRepairs, s.Corrections)
}
