// Reliability study: a quick Monte Carlo comparison of the paper's
// protection schemes over a 7-year lifetime (a small-scale version of
// Figures 14 and 18). Run cmd/citadel-repro for the full experiments.
package main

import (
	"fmt"
	"time"

	citadel "repro"
)

func main() {
	opts := citadel.ReliabilityOptions{
		// Field-data rates (Table I) plus a pessimistic TSV rate.
		Rates:   citadel.Table1Rates().WithTSV(1430),
		Trials:  40000,
		TSVSwap: true, // all systems employ TSV-Swap (paper section V-D)
		Seed:    7,
	}
	schemes := []citadel.Scheme{
		citadel.SchemeNone,
		citadel.SchemeSymbol8SameBank,
		citadel.SchemeSymbol8AcrossChannels,
		citadel.Scheme1DP,
		citadel.Scheme2DP,
		citadel.Scheme3DP,
		citadel.SchemeCitadel,
	}
	fmt.Printf("%d Monte Carlo trials per scheme, 7-year lifetime, 12h scrub\n\n", opts.Trials)
	fmt.Printf("%-32s %14s %12s\n", "scheme", "P(fail, 7y)", "runtime")
	var baseline float64
	for _, s := range schemes {
		start := time.Now()
		r := citadel.SimulateReliability(opts, s)
		p := r.Probability()
		note := ""
		if s == citadel.SchemeSymbol8AcrossChannels {
			baseline = p
		}
		if s == citadel.SchemeCitadel && p > 0 && baseline > 0 {
			note = fmt.Sprintf("  (%.0fx better than striped symbol code)", baseline/p)
		}
		if r.Failures == 0 {
			fmt.Printf("%-32s %14s %11.1fs%s\n", r.Policy,
				fmt.Sprintf("<%.1e", 1/float64(r.Trials)), time.Since(start).Seconds(), note)
		} else {
			fmt.Printf("%-32s %14.3e %11.1fs%s\n", r.Policy, p, time.Since(start).Seconds(), note)
		}
	}
	fmt.Println("\n(Citadel's failure probability sits below this trial count's")
	fmt.Println(" resolution — exactly the paper's point: ~700x better than the")
	fmt.Println(" symbol-based code. Increase Trials to resolve it.)")
}
