// Performance & power: why Citadel refuses to stripe cache lines. This
// example runs the queueing performance model for a few memory-intensive
// benchmarks under each data layout and under 3DP's overheads, printing the
// normalized execution time and active power the paper's Figures 5, 15 and
// 16 report.
package main

import (
	"fmt"
	"log"

	citadel "repro"
)

func main() {
	names := []string{"dealII", "gcc", "mcf", "lbm", "libquantum", "GemsFDTD", "stream", "mummer"}
	const requests = 60000

	fmt.Printf("%-12s | %-21s | %-21s | %-21s\n", "",
		"Across-Banks", "Across-Channels", "3DP (Same-Bank)")
	fmt.Printf("%-12s | %9s %11s | %9s %11s | %9s %11s\n", "benchmark",
		"exec", "power", "exec", "power", "exec", "power")
	for _, name := range names {
		b, ok := citadel.BenchmarkByName(name)
		if !ok {
			log.Fatalf("unknown benchmark %s", name)
		}
		base := citadel.SimulatePerformance(b, citadel.PerfOptions{Requests: requests})
		norm := func(striping citadel.Striping, prot citadel.Protection) (float64, float64) {
			r := citadel.SimulatePerformance(b, citadel.PerfOptions{
				Striping: striping, Protection: prot, Requests: requests,
			})
			return float64(r.Cycles) / float64(base.Cycles),
				r.ActivePowerWatts / base.ActivePowerWatts
		}
		abE, abP := norm(citadel.AcrossBanks, citadel.NoProtection)
		acE, acP := norm(citadel.AcrossChannels, citadel.NoProtection)
		dpE, dpP := norm(citadel.SameBank, citadel.Protection3DP)
		fmt.Printf("%-12s | %8.3fx %10.2fx | %8.3fx %10.2fx | %8.3fx %10.2fx\n",
			name, abE, abP, acE, acP, dpE, dpP)
	}

	fmt.Println("\nStriping tolerates bank failures but costs bank-level parallelism")
	fmt.Println("and multiplies activations; 3DP keeps the line in one bank and adds")
	fmt.Println("only read-before-write plus cached parity updates.")

	// Figure 13's enabler: Dimension-1 parity lines hit in the LLC ~85% of
	// the time because rate-mode cores reuse the same (row, slot) parity
	// lines across channels.
	fmt.Printf("\n%-12s %s\n", "benchmark", "parity-update LLC hit rate")
	for _, name := range names {
		b, _ := citadel.BenchmarkByName(name)
		r := citadel.MeasureParityCaching(b, 200000, 7)
		fmt.Printf("%-12s %25.1f%%\n", name, 100*r.HitRate())
	}
}
