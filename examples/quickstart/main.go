// Quickstart: build a functional Citadel controller, write data, break a
// DRAM row, and watch the pipeline detect (CRC-32), correct (3DP parity
// reconstruction), and isolate (DDS row sparing) the fault — returning the
// original data throughout.
package main

import (
	"bytes"
	"fmt"
	"log"

	citadel "repro"
)

func main() {
	// A small geometry keeps parity-group scans instant.
	ctl, err := citadel.NewController(citadel.TinyConfig())
	if err != nil {
		log.Fatal(err)
	}
	cfg := ctl.Config()
	fmt.Printf("stack: %d dies x %d banks x %d rows, %dB lines\n",
		cfg.DataDies, cfg.BanksPerDie, cfg.RowsPerBank, cfg.LineBytes)

	// Write a recognizable pattern into the first 64 lines.
	want := map[int64][]byte{}
	for idx := int64(0); idx < 64; idx++ {
		line := bytes.Repeat([]byte{byte(idx)}, cfg.LineBytes)
		if err := ctl.Write(idx, line); err != nil {
			log.Fatal(err)
		}
		want[idx] = line
	}

	// Kill the row holding line 10.
	co := cfg.CoordOfLineIndex(10)
	fmt.Printf("\ninjecting permanent row fault at die %d, bank %d, row %d\n",
		co.Die, co.Bank, co.Row)
	ctl.InjectFault(citadel.RowFault(co.Stack, co.Die, co.Bank, co.Row))

	// Reads still return the correct data.
	for idx := int64(0); idx < 64; idx++ {
		got, err := ctl.Read(idx)
		if err != nil {
			log.Fatalf("line %d: %v", idx, err)
		}
		if !bytes.Equal(got, want[idx]) {
			log.Fatalf("line %d corrupted!", idx)
		}
	}
	s := ctl.Stats()
	fmt.Printf("\nall 64 lines intact after the fault\n")
	fmt.Printf("  CRC mismatches detected : %d\n", s.CRCMismatches)
	fmt.Printf("  3DP corrections         : %d (dim1=%d dim2=%d dim3=%d)\n",
		s.Corrections, s.CorrectionsByDim[0], s.CorrectionsByDim[1], s.CorrectionsByDim[2])
	fmt.Printf("  rows spared by DDS      : %d\n", s.RowsSpared)

	// After sparing, the slow correction path is not taken again.
	before := ctl.Stats().Corrections
	for idx := int64(0); idx < 64; idx++ {
		if _, err := ctl.Read(idx); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("  corrections on re-read  : %d (spared rows serve directly)\n",
		ctl.Stats().Corrections-before)
}
