// Command citadel-repro regenerates the tables and figures of the Citadel
// paper's evaluation.
//
// Usage:
//
//	citadel-repro -experiment all            # every paper table/figure
//	citadel-repro -experiment ablations      # design-choice sensitivity studies
//	citadel-repro -experiment everything     # both
//	citadel-repro -experiment fig18 -trials 1000000
//	citadel-repro -forensics fail.json       # replay a forensics report
//
// Experiments: table1 table2 fig4 fig5 fig9 fig13 fig14 fig15 fig16 fig17
// table3 fig18 fig19 overhead; ablations: orgs scrub spares tsvpool
// paritysens.
//
// -forensics replays every exemplar of a report written by
// `citadel-sim -forensics` from its recorded seed coordinates and verifies
// the reproduced fault sets, failure times, and reason chains match the
// recording exactly (exit 1 on divergence).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	citadel "repro"
	"repro/internal/experiments"
)

// replayForensics loads a forensics report, replays every exemplar, and
// prints the verdicts. Returns an exit code.
func replayForensics(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var report citadel.ForensicsReport
	if err := json.Unmarshal(data, &report); err != nil {
		fmt.Fprintf(os.Stderr, "parsing %s: %v\n", path, err)
		return 2
	}
	fmt.Printf("report: run=%s scheme=%s seed=%d trials=%d failures=%d\n",
		report.RunID, report.Scheme, report.Seed, report.Trials, report.Failures)
	if len(report.Breakdown) > 0 {
		fmt.Println("failure breakdown:")
		for mode, n := range report.Breakdown {
			fmt.Printf("  %-28s %d\n", mode, n)
		}
	}
	if len(report.Exemplars) == 0 {
		fmt.Println("no exemplars to replay")
		return 0
	}
	scheme, ok := citadel.SchemeByName(report.Scheme)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", report.Scheme)
		return 2
	}
	opts := report.Options()
	failed := false
	for i, ex := range report.Exemplars {
		got, ok := citadel.ReplayExemplar(opts, scheme, ex)
		switch {
		case !ok:
			fmt.Printf("exemplar %d: NOT REPRODUCED (%s)\n", i, ex)
			failed = true
		case got.Mode != ex.Mode || got.FailureHours != ex.FailureHours:
			fmt.Printf("exemplar %d: DIVERGED got=(%s %.0fh) want=(%s %.0fh)\n",
				i, got.Mode, got.FailureHours, ex.Mode, ex.FailureHours)
			failed = true
		default:
			fmt.Printf("exemplar %d: reproduced %s at %.0fh; reasons:\n", i, ex.Mode, ex.FailureHours)
			for _, r := range got.Reasons {
				fmt.Printf("    %-24s %s\n", r.Code, r.Detail)
			}
		}
	}
	if err := citadel.VerifyReport(report); err != nil {
		fmt.Fprintf(os.Stderr, "verification: %v\n", err)
		return 1
	}
	if failed {
		return 1
	}
	fmt.Printf("all %d exemplars reproduced exactly\n", len(report.Exemplars))
	return 0
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id or 'all'")
		trials     = flag.Int("trials", 0, "Monte Carlo trials (0 = default)")
		requests   = flag.Int("requests", 0, "performance-model requests (0 = default)")
		seed       = flag.Int64("seed", 42, "random seed")
		asJSON     = flag.Bool("json", false, "emit reports as JSON lines")
		progress   = flag.Bool("progress", true, "report finished experiment phases on stderr")
		forensics  = flag.String("forensics", "", "replay and verify a forensics report written by citadel-sim -forensics")
	)
	flag.Parse()

	if *forensics != "" {
		os.Exit(replayForensics(*forensics))
	}

	opt := experiments.DefaultOptions()
	if *trials > 0 {
		opt.Trials = *trials
	}
	if *requests > 0 {
		opt.Requests = *requests
	}
	opt.Seed = *seed
	// Phase reports on stderr so an interrupted sweep shows how far it got
	// without polluting the report stream on stdout.
	if *progress {
		opt.Progress = func(ev experiments.PhaseEvent) {
			fmt.Fprintf(os.Stderr, "[%s] %s (%.1fs)\n", ev.Experiment, ev.Phase, ev.Elapsed.Seconds())
		}
	}

	ids := []string{*experiment}
	switch *experiment {
	case "all":
		ids = experiments.All()
	case "ablations":
		ids = experiments.Ablations()
	case "everything":
		ids = append(experiments.All(), experiments.Ablations()...)
	}
	// Ctrl-C cancels the sweep: the current experiment stops at its next
	// batch boundary and is reported with whatever rows it finished.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	interrupted := false
	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.RunContext(ctx, id, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *asJSON {
			out, _ := json.Marshal(map[string]any{
				"id": rep.ID, "title": rep.Title, "text": rep.Text,
				"partial": rep.Partial, "seconds": time.Since(start).Seconds(),
			})
			fmt.Println(string(out))
		} else {
			title := rep.Title
			if rep.Partial {
				title += " [partial: interrupted]"
			}
			fmt.Printf("=== %s ===\n%s\n", title, rep.Text)
			fmt.Printf("(%s: %.1fs)\n\n%s\n\n", rep.ID, time.Since(start).Seconds(),
				strings.Repeat("-", 72))
		}
		if ctx.Err() != nil {
			interrupted = true
			break
		}
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "interrupted: remaining experiments skipped")
		os.Exit(130)
	}
}
