// Command citadel-repro regenerates the tables and figures of the Citadel
// paper's evaluation.
//
// Usage:
//
//	citadel-repro -experiment all            # every paper table/figure
//	citadel-repro -experiment ablations      # design-choice sensitivity studies
//	citadel-repro -experiment everything     # both
//	citadel-repro -experiment fig18 -trials 1000000
//
// Experiments: table1 table2 fig4 fig5 fig9 fig13 fig14 fig15 fig16 fig17
// table3 fig18 fig19 overhead; ablations: orgs scrub spares tsvpool
// paritysens.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id or 'all'")
		trials     = flag.Int("trials", 0, "Monte Carlo trials (0 = default)")
		requests   = flag.Int("requests", 0, "performance-model requests (0 = default)")
		seed       = flag.Int64("seed", 42, "random seed")
		asJSON     = flag.Bool("json", false, "emit reports as JSON lines")
		progress   = flag.Bool("progress", true, "report finished experiment phases on stderr")
	)
	flag.Parse()

	opt := experiments.DefaultOptions()
	if *trials > 0 {
		opt.Trials = *trials
	}
	if *requests > 0 {
		opt.Requests = *requests
	}
	opt.Seed = *seed
	// Phase reports on stderr so an interrupted sweep shows how far it got
	// without polluting the report stream on stdout.
	if *progress {
		opt.Progress = func(ev experiments.PhaseEvent) {
			fmt.Fprintf(os.Stderr, "[%s] %s (%.1fs)\n", ev.Experiment, ev.Phase, ev.Elapsed.Seconds())
		}
	}

	ids := []string{*experiment}
	switch *experiment {
	case "all":
		ids = experiments.All()
	case "ablations":
		ids = experiments.Ablations()
	case "everything":
		ids = append(experiments.All(), experiments.Ablations()...)
	}
	// Ctrl-C cancels the sweep: the current experiment stops at its next
	// batch boundary and is reported with whatever rows it finished.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	interrupted := false
	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.RunContext(ctx, id, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *asJSON {
			out, _ := json.Marshal(map[string]any{
				"id": rep.ID, "title": rep.Title, "text": rep.Text,
				"partial": rep.Partial, "seconds": time.Since(start).Seconds(),
			})
			fmt.Println(string(out))
		} else {
			title := rep.Title
			if rep.Partial {
				title += " [partial: interrupted]"
			}
			fmt.Printf("=== %s ===\n%s\n", title, rep.Text)
			fmt.Printf("(%s: %.1fs)\n\n%s\n\n", rep.ID, time.Since(start).Seconds(),
				strings.Repeat("-", 72))
		}
		if ctx.Err() != nil {
			interrupted = true
			break
		}
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "interrupted: remaining experiments skipped")
		os.Exit(130)
	}
}
