// Command citadel-sim runs a single Monte Carlo reliability study for one
// protection scheme.
//
// Usage:
//
//	citadel-sim -scheme Citadel -trials 200000 -tsv-fit 1430
//	citadel-sim -scheme 3DP -tsvswap -years 5
//	citadel-sim -scheme Citadel -target-failures 50 -max-trials 5000000
//	citadel-sim -rates myrates.json -scheme 3DP
//	citadel-sim -scheme 3DP -tsv-fit 1430 -forensics fail.json -trace run.json
//	citadel-sim -scheme Citadel -trials 2000000 -job-dir ./campaigns
//	citadel-sim -scheme two-tier-replication -trials 200000
//	citadel-sim -scheme Citadel -fault-model rowhammer -scenario-param aggressors=8
//	citadel-sim -list
//	citadel-sim -list-scenarios
//
// Beyond the paper's enum schemes, -scheme and -fault-model accept any
// plugin registered in the scenario registry (internal/scenario);
// -list-scenarios prints the catalog with per-plugin -scenario-param
// knobs. Scenario-specific counters (replica-fetch traffic, rowhammer
// episodes) are printed after the result line.
//
// -forensics writes a replayable failure-forensics report (feed it to
// citadel-repro -forensics to verify). -trace writes the flight recorder
// as Chrome trace-event JSON (open in Perfetto / chrome://tracing).
//
// -job-dir runs the campaign durably: progress is checkpointed to a
// content-addressed store every -checkpoint-trials trials, so a killed
// run resumes where it stopped (-resume, on by default) and a repeated
// identical run is answered from cache without simulating at all. The
// store directory is shared with citadel-server -job-dir.
//
// -cluster-listen (durable mode only) additionally serves the
// coordinator protocol on the given address, so citadel-worker
// processes can pull chunks of this one campaign:
//
//	citadel-sim -scheme Citadel -trials 2000000 -job-dir ./campaigns -cluster-listen :8080
//	citadel-worker -coordinator http://localhost:8080    # in other terminals / hosts
//
// If no worker shows up within the grace period the campaign simply
// runs locally — the flag never blocks a result.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	citadel "repro"
	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/scenario"
	"repro/internal/store"
)

// printScenarioStats dumps scenario-plugin counters sorted by name.
func printScenarioStats(stats map[string]float64) {
	if len(stats) == 0 {
		return
	}
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("scenario: %s=%g\n", k, stats[k])
	}
}

// printCatalogSection lists one side of the scenario catalog.
func printCatalogSection(title string, entries []scenario.CatalogEntry) {
	fmt.Printf("%s:\n", title)
	for _, e := range entries {
		fmt.Printf("  %-26s %s\n", e.Name, e.Description)
		for _, p := range e.Params {
			fmt.Printf("      -scenario-param %s=... (default %g): %s\n", p.Name, p.Default, p.Doc)
		}
	}
}

// writeJSONFile writes v as indented JSON to path.
func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	var (
		schemeName = flag.String("scheme", "Citadel", "protection scheme (see -list)")
		trials     = flag.Int("trials", 100000, "Monte Carlo trials")
		tsvFIT     = flag.Float64("tsv-fit", 0, "TSV failure rate per die (FIT)")
		tsvSwap    = flag.Bool("tsvswap", false, "force TSV-SWAP on")
		years      = flag.Float64("years", 7, "lifetime in years")
		scrub      = flag.Float64("scrub", 12, "scrub interval in hours")
		seed       = flag.Int64("seed", 1, "random seed")
		list       = flag.Bool("list", false, "list schemes and exit")
		ratesPath  = flag.String("rates", "", "JSON file with custom FIT rates (overrides Table I)")
		targetFail = flag.Int("target-failures", 0, "adaptive mode: add trials until this many failures")
		maxTrials  = flag.Int("max-trials", 0, "adaptive mode: trial cap (default 10x -trials)")
		progress   = flag.Duration("progress", 2*time.Second, "progress report interval on stderr (0 disables)")
		forensics  = flag.String("forensics", "", "write a replayable failure-forensics report (JSON) to this file")
		exemplars  = flag.Int("exemplars", 8, "forensics: max exemplar records captured")
		traceOut   = flag.String("trace", "", "write the flight recorder (Chrome trace-event JSON) to this file")
		sample     = flag.Int("sample", 64, "trace: keep roughly 1-in-N trial spans")
		jobDir     = flag.String("job-dir", "", "durable mode: checkpoint/resume the campaign via this store directory")
		resume     = flag.Bool("resume", true, "durable mode: resume from an existing checkpoint (false restarts from trial zero)")
		ckptTrials = flag.Int("checkpoint-trials", jobs.DefaultCheckpointTrials, "durable mode: trials per checkpoint chunk (part of the campaign identity)")
		jobWorkers = flag.Int("workers", 0, "durable mode: engine worker goroutines (0 = GOMAXPROCS; part of the campaign identity)")
		clusterOn  = flag.String("cluster-listen", "", "durable mode: serve the coordinator protocol on this address so citadel-worker processes can pull chunks")
		workerWait = flag.Duration("worker-grace", 10*time.Second, "cluster mode: how long to wait for a live worker before running locally")
		rareEvent  = flag.Bool("rare-event", false, "importance-sampled rare-event engine: bias large-granularity faults, unbias via likelihood ratios (resolves <1e-6 tails)")
		biasFactor = flag.Float64("bias-factor", 0, "rare-event mode: large-granularity rate inflation (0 = default 16)")
		splitCheck = flag.Bool("split", false, "cross-validate with multilevel splitting on the live-fault count (direct mode only)")
		faultModel = flag.String("fault-model", "", "arrival-process plugin (empty = poisson; see -list-scenarios)")
		listScen   = flag.Bool("list-scenarios", false, "list registered scenario schemes and fault models with their parameters, then exit")
	)
	scenarioParams := map[string]float64{}
	flag.Func("scenario-param", "scenario plugin knob as name=value (repeatable; see -list-scenarios)", func(s string) error {
		name, val, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("want name=value, got %q", s)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return fmt.Errorf("value of %q: %v", strings.TrimSpace(name), err)
		}
		scenarioParams[strings.TrimSpace(name)] = v
		return nil
	})
	flag.Parse()

	if *list {
		for _, s := range citadel.Schemes() {
			fmt.Println(s)
		}
		return
	}
	if *listScen {
		cat := scenario.BuildCatalog()
		printCatalogSection("schemes", cat.Schemes)
		printCatalogSection("fault models", cat.FaultModels)
		return
	}
	if _, ok := scenario.SchemeByName(*schemeName); !ok {
		fmt.Fprintf(os.Stderr, "unknown scheme %q; use -list-scenarios\n", *schemeName)
		os.Exit(2)
	}
	if _, ok := scenario.FaultModelByName(*faultModel); !ok {
		fmt.Fprintf(os.Stderr, "unknown fault model %q; use -list-scenarios\n", *faultModel)
		os.Exit(2)
	}
	if err := scenario.ValidateParams(*schemeName, *faultModel, scenarioParams); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// -split and -forensics replay through the enum-typed entry points,
	// which run the default Poisson process; they accept only the paper's
	// enum schemes under the default fault model.
	var scheme citadel.Scheme
	enumScheme := false
	for _, s := range citadel.Schemes() {
		if s.String() == *schemeName {
			scheme, enumScheme = s, true
			break
		}
	}
	if (*splitCheck || *forensics != "") && !enumScheme {
		fmt.Fprintf(os.Stderr, "-split and -forensics support only the enum schemes (see -list), not %q\n", *schemeName)
		os.Exit(2)
	}
	if (*splitCheck || *forensics != "" || *rareEvent) && *faultModel != "" && *faultModel != scenario.DefaultFaultModel {
		fmt.Fprintf(os.Stderr, "-split, -forensics and -rare-event support only the default %q fault model\n", scenario.DefaultFaultModel)
		os.Exit(2)
	}

	rates := citadel.Table1Rates()
	if *ratesPath != "" {
		loaded, err := fault.LoadRates(*ratesPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		rates = loaded
	}
	if *clusterOn != "" && *jobDir == "" {
		fmt.Fprintln(os.Stderr, "-cluster-listen requires -job-dir (chunks checkpoint through the job store)")
		os.Exit(2)
	}
	if *biasFactor != 0 && !*rareEvent {
		fmt.Fprintln(os.Stderr, "-bias-factor requires -rare-event")
		os.Exit(2)
	}
	if *rareEvent && (*targetFail > 0 || *forensics != "" || *traceOut != "") {
		fmt.Fprintln(os.Stderr, "-rare-event is incompatible with -target-failures, -forensics and -trace")
		os.Exit(2)
	}
	if *splitCheck && *jobDir != "" {
		fmt.Fprintln(os.Stderr, "-split runs in direct mode only (not with -job-dir)")
		os.Exit(2)
	}
	if *jobDir != "" {
		if *targetFail > 0 || *forensics != "" || *traceOut != "" || *ratesPath != "" {
			fmt.Fprintln(os.Stderr, "-job-dir is incompatible with -target-failures, -forensics, -trace and -rates")
			os.Exit(2)
		}
		runDurable(durableRun{
			dir:           *jobDir,
			resume:        *resume,
			clusterListen: *clusterOn,
			workerGrace:   *workerWait,
			spec: jobs.ReliabilitySpec{
				Scheme:           *schemeName,
				Trials:           *trials,
				TSVFIT:           *tsvFIT,
				TSVSwap:          *tsvSwap,
				LifetimeYears:    *years,
				ScrubHours:       *scrub,
				Seed:             *seed,
				Workers:          *jobWorkers,
				CheckpointTrials: *ckptTrials,
				RareEvent:        *rareEvent,
				BiasFactor:       *biasFactor,
				FaultModel:       *faultModel,
				ScenarioParams:   scenarioParams,
			},
			progressEvery: *progress,
		})
		return
	}

	opts := citadel.ReliabilityOptions{
		Rates:              rates.WithTSV(*tsvFIT),
		Trials:             *trials,
		LifetimeYears:      *years,
		ScrubIntervalHours: *scrub,
		TSVSwap:            *tsvSwap,
		Seed:               *seed,
		RunID:              obs.NewRunID(),
		Forensics:          *forensics != "",
		MaxExemplars:       *exemplars,
		RareEvent:          *rareEvent,
		BiasFactor:         *biasFactor,
		FaultModel:         *faultModel,
		ScenarioParams:     scenarioParams,
	}
	if *traceOut != "" {
		opts.Trace = trace.New(trace.Options{
			RunID:       opts.RunID,
			SampleEvery: *sample,
			Seed:        *seed,
		})
	}
	// Periodic progress on stderr, so a long or interrupted run shows what
	// it was doing. The final snapshot (Done) is skipped: the result line
	// below carries the same numbers.
	if *progress > 0 {
		opts.ProgressInterval = *progress
		opts.Progress = func(p citadel.RunProgress) {
			if p.Done {
				return
			}
			fmt.Fprintf(os.Stderr, "progress: run=%s %s trials=%d/%d failures=%d scrubs=%d rate=%.0f trials/s elapsed=%s\n",
				p.RunID, p.Policy, p.TrialsDone, p.TrialsTarget, p.Failures, p.ScrubPasses,
				p.TrialsPerSec(), p.Elapsed.Round(time.Second))
		}
	}
	// Ctrl-C cancels the run; the engine returns within one trial batch
	// and we report the statistics gathered so far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var res citadel.Result
	var err error
	if *targetFail > 0 {
		res, err = citadel.SimulateScenarioReliabilityAdaptiveContext(ctx, opts, *schemeName, *targetFail, *maxTrials)
	} else {
		res, err = citadel.SimulateScenarioReliabilityContext(ctx, opts, *schemeName)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Do not stop() here: -split reuses ctx below, and NotifyContext's
	// stop cancels the context rather than just unregistering signals.
	if res.Partial {
		fmt.Fprintf(os.Stderr, "interrupted: partial result over %d completed trials\n", res.Trials)
	}
	if *targetFail > 0 && !res.Partial && !res.TargetMet {
		fmt.Fprintf(os.Stderr, "adaptive: target of %d failures NOT reached (%d observed at the trial cap); consider -rare-event\n",
			*targetFail, res.Failures)
	}
	if *rareEvent {
		fmt.Fprintf(os.Stderr, "rare-event: ESS=%.1f effective-trials=%.3g (%.0fx the %d simulated)\n",
			res.ESS(), res.EffectiveTrials(), res.EffectiveTrials()/float64(max(res.Trials, 1)), res.Trials)
	}
	if *forensics != "" {
		report := citadel.NewForensicsReport(opts, scheme, res)
		if err := writeJSONFile(*forensics, report); err != nil {
			fmt.Fprintf(os.Stderr, "writing forensics report: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "forensics: run=%s %d failure modes, %d exemplars -> %s\n",
			opts.RunID, len(report.Breakdown), len(report.Exemplars), *forensics)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = opts.Trace.WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: run=%s %d events (%d dropped) -> %s\n",
			opts.RunID, opts.Trace.Len(), opts.Trace.Dropped(), *traceOut)
	}
	fmt.Println(res)
	printScenarioStats(res.ScenarioStats)
	if res.Trials == 0 {
		os.Exit(1)
	}
	fmt.Printf("%-6s %s\n", "year", "P(failure)")
	for y := 1; y <= int(*years); y++ {
		fmt.Printf("%-6d %.3e\n", y, res.ProbabilityByYear(y))
	}
	if *splitCheck {
		sp := citadel.SimulateReliabilitySplitContext(ctx, opts, scheme, nil)
		if sp.Partial {
			fmt.Fprintf(os.Stderr, "split: interrupted: %v\n", sp.Err)
		} else {
			fmt.Println(sp)
		}
	}
}

// durableRun carries the -job-dir mode configuration.
type durableRun struct {
	dir           string
	resume        bool
	clusterListen string // non-empty: serve the coordinator protocol here
	workerGrace   time.Duration
	spec          jobs.ReliabilitySpec
	progressEvery time.Duration
}

// runDurable executes the campaign through the job orchestrator instead
// of calling the engine directly: the run is chunked, each completed
// chunk is checkpointed into the content-addressed store, a killed run
// resumes from its checkpoint, and a repeated identical spec is served
// from cache with zero new trials.
func runDurable(cfg durableRun) {
	logf := func(format string, args ...any) { log.Printf(format, args...) }
	st, err := store.Open(cfg.dir, store.Options{Logf: logf})
	if err != nil {
		fmt.Fprintf(os.Stderr, "job store %s: %v\n", cfg.dir, err)
		os.Exit(1)
	}
	spec := jobs.Spec{Kind: jobs.KindReliability, Reliability: &cfg.spec}
	if !cfg.resume {
		// Forget everything the store knows about this exact spec so the
		// campaign restarts from trial zero.
		if key, err := spec.Key(); err == nil {
			st.DeleteJob(key)
			st.DeleteResult(key)
		}
	}
	// With -cluster-listen, chunks are offered to pulling citadel-worker
	// processes first; the campaign falls back to local execution if none
	// show up within the grace period (or all die mid-campaign).
	orchOpts := jobs.Options{Store: st, Workers: 1, QueueDepth: 1, Logf: logf}
	var coord *cluster.Coordinator
	if cfg.clusterListen != "" {
		coord = cluster.New(cluster.Options{NoWorkerGrace: cfg.workerGrace, Logf: logf})
		defer coord.Close()
		srv := &http.Server{
			Addr:    cfg.clusterListen,
			Handler: api.New(api.Options{Cluster: coord, Logf: logf}).Handler(),
		}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "cluster listener %s: %v (running locally)\n", cfg.clusterListen, err)
			}
		}()
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "cluster: coordinator on %s; point citadel-worker -coordinator at it (local fallback after %s without workers)\n",
			cfg.clusterListen, cfg.workerGrace)
		orchOpts.ChunkExec = coord
	}
	orch := jobs.New(orchOpts)
	job, err := orch.Submit(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	switch {
	case job.Cached:
		fmt.Fprintf(os.Stderr, "cache: campaign %s already complete in %s; zero new trials\n",
			job.Key[:12], cfg.dir)
	case job.Resumed:
		fmt.Fprintf(os.Stderr, "resume: campaign %s continuing at chunk %d/%d (%d trials done)\n",
			job.Key[:12], job.ChunksDone, job.TotalChunks, job.TrialsDone)
	}

	// Ctrl-C stops the orchestrator gracefully: completed chunks are
	// already checkpointed, so the next run with the same -job-dir and
	// spec picks up where this one stopped.
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()

	if cfg.progressEvery > 0 {
		ticker := time.NewTicker(cfg.progressEvery)
		defer ticker.Stop()
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			for {
				select {
				case <-ticker.C:
					if j, ok := orch.Status(job.ID); ok && j.State == jobs.StateRunning {
						fmt.Fprintf(os.Stderr, "progress: job=%s chunks=%d/%d trials=%d/%d failures=%d\n",
							j.ID, j.ChunksDone, j.TotalChunks, j.TrialsDone, j.TrialsTarget, j.Failures)
					}
				case <-watchDone:
					return
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	final, err := orch.Wait(ctx, job.ID)
	if err != nil {
		stopSig() // a second ^C kills immediately
		closeCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if cerr := orch.Close(closeCtx); cerr != nil {
			fmt.Fprintf(os.Stderr, "checkpoint on interrupt: %v\n", cerr)
		}
		if j, ok := orch.Status(job.ID); ok {
			fmt.Fprintf(os.Stderr, "interrupted: %d/%d chunks checkpointed (%d trials); rerun with -job-dir %s to resume\n",
				j.ChunksDone, j.TotalChunks, j.TrialsDone, cfg.dir)
		}
		os.Exit(1)
	}
	closeCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	orch.Close(closeCtx)

	if final.State != jobs.StateDone {
		fmt.Fprintf(os.Stderr, "campaign %s %s: %s\n", final.ID, final.State, final.Error)
		os.Exit(1)
	}
	var res citadel.Result
	if err := json.Unmarshal(final.Result, &res); err != nil {
		fmt.Fprintf(os.Stderr, "decoding campaign result: %v\n", err)
		os.Exit(1)
	}
	if res.Weighted {
		fmt.Fprintf(os.Stderr, "rare-event: ESS=%.1f effective-trials=%.3g (%.0fx the %d simulated)\n",
			res.ESS(), res.EffectiveTrials(), res.EffectiveTrials()/float64(max(res.Trials, 1)), res.Trials)
	}
	fmt.Println(res)
	printScenarioStats(res.ScenarioStats)
	if res.Trials == 0 {
		os.Exit(1)
	}
	fmt.Printf("%-6s %s\n", "year", "P(failure)")
	for y := 1; y <= int(cfg.spec.LifetimeYears); y++ {
		fmt.Printf("%-6d %.3e\n", y, res.ProbabilityByYear(y))
	}
}
