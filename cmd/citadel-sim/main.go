// Command citadel-sim runs a single Monte Carlo reliability study for one
// protection scheme.
//
// Usage:
//
//	citadel-sim -scheme Citadel -trials 200000 -tsv-fit 1430
//	citadel-sim -scheme 3DP -tsvswap -years 5
//	citadel-sim -scheme Citadel -target-failures 50 -max-trials 5000000
//	citadel-sim -rates myrates.json -scheme 3DP
//	citadel-sim -scheme 3DP -tsv-fit 1430 -forensics fail.json -trace run.json
//	citadel-sim -list
//
// -forensics writes a replayable failure-forensics report (feed it to
// citadel-repro -forensics to verify). -trace writes the flight recorder
// as Chrome trace-event JSON (open in Perfetto / chrome://tracing).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	citadel "repro"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// writeJSONFile writes v as indented JSON to path.
func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	var (
		schemeName = flag.String("scheme", "Citadel", "protection scheme (see -list)")
		trials     = flag.Int("trials", 100000, "Monte Carlo trials")
		tsvFIT     = flag.Float64("tsv-fit", 0, "TSV failure rate per die (FIT)")
		tsvSwap    = flag.Bool("tsvswap", false, "force TSV-SWAP on")
		years      = flag.Float64("years", 7, "lifetime in years")
		scrub      = flag.Float64("scrub", 12, "scrub interval in hours")
		seed       = flag.Int64("seed", 1, "random seed")
		list       = flag.Bool("list", false, "list schemes and exit")
		ratesPath  = flag.String("rates", "", "JSON file with custom FIT rates (overrides Table I)")
		targetFail = flag.Int("target-failures", 0, "adaptive mode: add trials until this many failures")
		maxTrials  = flag.Int("max-trials", 0, "adaptive mode: trial cap (default 10x -trials)")
		progress   = flag.Duration("progress", 2*time.Second, "progress report interval on stderr (0 disables)")
		forensics  = flag.String("forensics", "", "write a replayable failure-forensics report (JSON) to this file")
		exemplars  = flag.Int("exemplars", 8, "forensics: max exemplar records captured")
		traceOut   = flag.String("trace", "", "write the flight recorder (Chrome trace-event JSON) to this file")
		sample     = flag.Int("sample", 64, "trace: keep roughly 1-in-N trial spans")
	)
	flag.Parse()

	if *list {
		for _, s := range citadel.Schemes() {
			fmt.Println(s)
		}
		return
	}
	var scheme citadel.Scheme
	found := false
	for _, s := range citadel.Schemes() {
		if s.String() == *schemeName {
			scheme, found = s, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown scheme %q; use -list\n", *schemeName)
		os.Exit(2)
	}

	rates := citadel.Table1Rates()
	if *ratesPath != "" {
		loaded, err := fault.LoadRates(*ratesPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		rates = loaded
	}
	opts := citadel.ReliabilityOptions{
		Rates:              rates.WithTSV(*tsvFIT),
		Trials:             *trials,
		LifetimeYears:      *years,
		ScrubIntervalHours: *scrub,
		TSVSwap:            *tsvSwap,
		Seed:               *seed,
		RunID:              obs.NewRunID(),
		Forensics:          *forensics != "",
		MaxExemplars:       *exemplars,
	}
	if *traceOut != "" {
		opts.Trace = trace.New(trace.Options{
			RunID:       opts.RunID,
			SampleEvery: *sample,
			Seed:        *seed,
		})
	}
	// Periodic progress on stderr, so a long or interrupted run shows what
	// it was doing. The final snapshot (Done) is skipped: the result line
	// below carries the same numbers.
	if *progress > 0 {
		opts.ProgressInterval = *progress
		opts.Progress = func(p citadel.RunProgress) {
			if p.Done {
				return
			}
			fmt.Fprintf(os.Stderr, "progress: run=%s %s trials=%d/%d failures=%d scrubs=%d rate=%.0f trials/s elapsed=%s\n",
				p.RunID, p.Policy, p.TrialsDone, p.TrialsTarget, p.Failures, p.ScrubPasses,
				p.TrialsPerSec(), p.Elapsed.Round(time.Second))
		}
	}
	// Ctrl-C cancels the run; the engine returns within one trial batch
	// and we report the statistics gathered so far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var res citadel.Result
	if *targetFail > 0 {
		res = citadel.SimulateReliabilityAdaptiveContext(ctx, opts, scheme, *targetFail, *maxTrials)
	} else {
		res = citadel.SimulateReliabilityContext(ctx, opts, scheme)
	}
	stop()
	if res.Partial {
		fmt.Fprintf(os.Stderr, "interrupted: partial result over %d completed trials\n", res.Trials)
	}
	if *forensics != "" {
		report := citadel.NewForensicsReport(opts, scheme, res)
		if err := writeJSONFile(*forensics, report); err != nil {
			fmt.Fprintf(os.Stderr, "writing forensics report: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "forensics: run=%s %d failure modes, %d exemplars -> %s\n",
			opts.RunID, len(report.Breakdown), len(report.Exemplars), *forensics)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = opts.Trace.WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: run=%s %d events (%d dropped) -> %s\n",
			opts.RunID, opts.Trace.Len(), opts.Trace.Dropped(), *traceOut)
	}
	fmt.Println(res)
	if res.Trials == 0 {
		os.Exit(1)
	}
	fmt.Printf("%-6s %s\n", "year", "P(failure)")
	for y := 1; y <= int(*years); y++ {
		fmt.Printf("%-6d %.3e\n", y, res.ProbabilityByYear(y))
	}
}
