// Command citadel-server exposes the simulators over HTTP/JSON for sweep
// scripts and dashboards.
//
// Usage:
//
//	citadel-server -addr :8080
//
// Routes (see internal/api):
//
//	GET  /api/v1/schemes
//	GET  /api/v1/benchmarks
//	GET  /api/v1/overhead
//	POST /api/v1/reliability   {"scheme":"Citadel","trials":100000,"tsvFit":1430,"tsvSwap":true}
//	POST /api/v1/performance   {"benchmark":"mcf","striping":"across-channels"}
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"repro/internal/api"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	srv := &http.Server{
		Addr:         *addr,
		Handler:      api.Handler(),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 10 * time.Minute, // Monte Carlo runs can be long
	}
	log.Printf("citadel-server listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
