// Command citadel-server exposes the simulators over HTTP/JSON for sweep
// scripts and dashboards.
//
// Usage:
//
//	citadel-server -addr :8080 -max-concurrent 2 -sim-timeout 5m
//
// Routes (see internal/api):
//
//	GET  /api/v1/healthz
//	GET  /api/v1/readyz
//	GET  /api/v1/schemes
//	GET  /api/v1/benchmarks
//	GET  /api/v1/overhead
//	POST /api/v1/reliability   {"scheme":"Citadel","trials":100000,"tsvFit":1430,"tsvSwap":true}
//	POST /api/v1/performance   {"benchmark":"mcf","striping":"across-channels"}
//	POST /api/v1/jobs          async campaign submission (only with -job-dir)
//	GET  /api/v1/jobs{,/{id}}  job listing / status / result
//	GET  /api/v1/jobs/{id}/events  live job progress over SSE (only with -job-dir)
//	DELETE /api/v1/jobs/{id}   cancel a queued or running job
//	POST /api/v1/cluster/...   worker lease/heartbeat/complete (only with -cluster)
//	GET  /api/v1/cluster/workers  worker fleet view (only with -cluster)
//	GET  /metrics              Prometheus text metrics (engine + API counters)
//	GET  /debug/trace          flight-recorder dump (only with -trace; ?format=text)
//	GET  /debug/pprof/         live profiling (only with -pprof)
//
// Every simulation run gets a run ID, returned in the X-Run-Id response
// header and stamped on the run's start/done log lines.
//
// Operational behavior: at most -max-concurrent simulations run at once
// (excess requests wait up to -queue-wait, then get 429 + Retry-After);
// each simulation is bounded by -sim-timeout and by the client's
// connection (disconnects cancel the run; both yield a partial result).
// On SIGINT/SIGTERM the server stops accepting work, waits up to
// -drain-timeout for in-flight runs, then cancels them so they flush
// partial results before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/obs/trace"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/stream"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		maxConcurrent = flag.Int("max-concurrent", 0, "simultaneous simulations (0 = GOMAXPROCS)")
		queueWait     = flag.Duration("queue-wait", 2*time.Second, "how long a request may wait for a simulation slot before 429")
		simTimeout    = flag.Duration("sim-timeout", 5*time.Minute, "per-request simulation deadline (expired runs return partial results)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "shutdown: how long to wait for in-flight runs before cancelling them")
		enablePprof   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (trusted networks only)")
		traceCap      = flag.Int("trace", 0, "flight-recorder capacity in events; >0 mounts GET /debug/trace")
		traceSample   = flag.Int("trace-sample", 64, "flight recorder: keep roughly 1-in-N spans")
		jobDir        = flag.String("job-dir", "", "durable job store directory; enables the async /api/v1/jobs routes with checkpoint/resume")
		jobWorkers    = flag.Int("job-workers", 1, "orchestrator worker goroutines executing campaigns")
		jobQueue      = flag.Int("job-queue", 64, "bounded job queue depth (full queue answers 429)")
		jobCacheMB    = flag.Int64("job-cache-mb", 256, "content-addressed result cache cap in MiB (LRU eviction past it)")
		clusterMode   = flag.Bool("cluster", false, "distribute reliability campaigns to citadel-worker processes (requires -job-dir)")
		streamSubs    = flag.Int("stream-max-subscribers", 0, "SSE subscriber cap across all jobs; excess connections get 429 (0 = default 16384)")
		leaseTTL      = flag.Duration("lease-ttl", 15*time.Second, "cluster: chunk lease TTL (workers heartbeat at TTL/3)")
		noWorkerGrace = flag.Duration("no-worker-grace", 10*time.Second, "cluster: how long a campaign waits with zero live workers before running locally")
	)
	flag.Parse()

	// The process flight recorder is shared by every simulation run; each
	// run's spans carry its X-Run-Id for correlation.
	var rec *trace.Recorder
	if *traceCap > 0 {
		rec = trace.New(trace.Options{
			Capacity:    *traceCap,
			SampleEvery: *traceSample,
			RunID:       "citadel-server",
		})
	}

	// With -job-dir, campaigns can also run asynchronously: submissions are
	// checkpointed to a content-addressed store, so a restarted server
	// re-enqueues interrupted campaigns instead of losing them, and a
	// resubmitted spec is answered from cache without re-simulating.
	// With -cluster, reliability campaigns are sharded into chunk leases
	// and pulled by citadel-worker processes over the same HTTP API; a
	// campaign with no live workers falls back to local execution.
	var coord *cluster.Coordinator
	if *clusterMode {
		if *jobDir == "" {
			log.Fatal("-cluster requires -job-dir (campaign chunks checkpoint through the job store)")
		}
		coord = cluster.New(cluster.Options{
			LeaseTTL:      *leaseTTL,
			NoWorkerGrace: *noWorkerGrace,
			Logf:          log.Printf,
		})
	}

	var orch *jobs.Orchestrator
	var hub *stream.Hub
	if *jobDir != "" {
		st, err := store.Open(*jobDir, store.Options{
			MaxBytes: *jobCacheMB << 20,
			Logf:     log.Printf,
		})
		if err != nil {
			log.Fatalf("job store %s: %v", *jobDir, err)
		}
		// The SSE hub rides along with the job routes: every job state
		// transition and progress checkpoint is published once and fanned
		// out to GET /api/v1/jobs/{id}/events subscribers.
		hub = stream.New(stream.Options{
			MaxSubscribers: *streamSubs,
			Logf:           log.Printf,
		})
		opts := jobs.Options{
			Store:      st,
			Workers:    *jobWorkers,
			QueueDepth: *jobQueue,
			Stream:     hub,
			Logf:       log.Printf,
		}
		if coord != nil {
			opts.ChunkExec = coord
		}
		orch = jobs.New(opts)
		if recovered := orch.Recover(); recovered > 0 {
			log.Printf("jobs: re-enqueued %d checkpointed campaigns from %s", recovered, *jobDir)
		}
	}

	apiSrv := api.New(api.Options{
		MaxConcurrent: *maxConcurrent,
		QueueWait:     *queueWait,
		SimTimeout:    *simTimeout,
		EnablePprof:   *enablePprof,
		Trace:         rec,
		Jobs:          orch,
		Cluster:       coord,
		Stream:        hub,
	})

	// baseCtx underlies every request context: cancelling it (when the
	// drain deadline passes) makes in-flight simulations return partial
	// results so Shutdown can finish.
	baseCtx, cancelInflight := context.WithCancel(context.Background())
	defer cancelInflight()

	srv := &http.Server{
		Addr:        *addr,
		Handler:     apiSrv.Handler(),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
		ReadTimeout: 30 * time.Second,
		// Must outlive the simulation deadline or responses are cut off.
		WriteTimeout: *simTimeout + 30*time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		cat := scenario.BuildCatalog()
		log.Printf("citadel-server listening on %s (max %d concurrent simulations, sim timeout %s, metrics at /metrics, pprof %v, %d schemes + %d fault models at /api/v1/scenarios)",
			*addr, apiSrv.Capacity(), *simTimeout, *enablePprof, len(cat.Schemes), len(cat.FaultModels))
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately

	log.Printf("shutdown: draining %d in-flight simulations (up to %s)", apiSrv.InFlight(), *drainTimeout)
	// readyz now reports 503 so load balancers stop routing here, and
	// every SSE subscriber receives a terminal drain event instead of a
	// silently dying connection.
	apiSrv.Drain()

	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancelDrain()

	if orch != nil {
		// Stop the orchestrator first: running campaigns checkpoint their
		// completed chunks and park as queued, so the next start resumes
		// them instead of replaying from trial zero. Distributed campaigns
		// see their context cancel, which aborts their leases cleanly.
		if err := orch.Close(drainCtx); err != nil {
			log.Printf("shutdown: job orchestrator: %v", err)
		}
	}
	if coord != nil {
		coord.Close()
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			// Graceful drain expired: cancel the simulations so handlers
			// flush partial results, then give them a moment to write.
			log.Printf("shutdown: drain deadline passed, cancelling in-flight simulations")
			cancelInflight()
			flushCtx, cancelFlush := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancelFlush()
			if err := srv.Shutdown(flushCtx); err != nil {
				log.Printf("shutdown: forcing close: %v", err)
				srv.Close()
			}
		} else {
			log.Printf("shutdown: %v", err)
		}
	}
	log.Printf("citadel-server stopped")
}
