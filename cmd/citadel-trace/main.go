// Command citadel-trace exports the synthetic request stream of a
// benchmark as a CSV trace, or replays a trace file through the
// performance model and the command-level DRAM model.
//
// Usage:
//
//	citadel-trace -benchmark mcf -requests 100000 -out mcf.trace
//	citadel-trace -replay mcf.trace -benchmark mcf
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dramsim"
	"repro/internal/perfsim"
	"repro/internal/stack"
	"repro/internal/workload"
)

func main() {
	var (
		benchmark = flag.String("benchmark", "mcf", "benchmark profile for generation/replay")
		requests  = flag.Int("requests", 100000, "requests to generate or replay")
		out       = flag.String("out", "", "write a synthetic trace to this file")
		replay    = flag.String("replay", "", "replay a trace file through the models")
		seed      = flag.Int64("seed", 1, "random seed for generation")
	)
	flag.Parse()

	prof, ok := workload.ByName(*benchmark)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *benchmark)
		os.Exit(2)
	}

	switch {
	case *out != "":
		reqs := workload.NewGenerator(prof, 8, *seed).Stream(*requests)
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := workload.WriteTrace(f, reqs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d requests to %s\n", len(reqs), *out)

	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		reqs, err := workload.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		src, err := workload.NewTraceSource(reqs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg := perfsim.DefaultConfig()
		cfg.Requests = *requests
		cfg.Trace = src
		st := perfsim.Run(prof, cfg)
		fmt.Printf("perfsim:  cycles=%d rowhit=%.1f%% avgReadLat=%.1f\n",
			st.Cycles, 100*st.RowHitRate(), st.AvgReadLatency())

		// Channel-0 slice through the command-level model.
		scfg := stack.DefaultConfig()
		ch := dramsim.NewChannel(scfg.BanksPerDie, dramsim.DefaultTiming())
		var dreqs []*dramsim.Request
		for i, r := range reqs {
			co := scfg.InterleaveLine(r.LineAddr)
			if co.Stack != 0 || co.Die != 0 {
				continue
			}
			dreqs = append(dreqs, &dramsim.Request{
				Bank: co.Bank, Row: co.Row, Write: r.Write, Arrive: int64(i),
			})
		}
		dst := ch.SimulateClosedLoop(dreqs, 16)
		fmt.Printf("dramsim:  %s (channel 0, %d requests)\n", dst, len(dreqs))

	default:
		fmt.Fprintln(os.Stderr, "need -out (generate) or -replay (consume); see -h")
		os.Exit(2)
	}
}
