// Command citadel-worker is a stateless campaign-chunk executor. Point
// it at a citadel-server started with -cluster and it pulls chunk
// leases, simulates them locally, and delivers the results:
//
//	citadel-server -addr :8080 -job-dir /var/lib/citadel -cluster &
//	citadel-worker -coordinator http://localhost:8080
//	citadel-worker -coordinator http://localhost:8080   # more workers, more throughput
//
// Workers hold no durable state and never listen on a port — everything
// needed to run a chunk deterministically arrives in the lease grant, so
// a worker can be killed (even SIGKILL) at any moment: the coordinator
// requeues its chunk when the lease expires, and the campaign result is
// bit-identical regardless of how many workers ran or died. The grant
// carries the full reliability spec, including the scenario selection
// (scheme, fault model, scenario parameters), so scenario-registry
// campaigns distribute with no worker-side configuration: chunks resolve
// their plugins from the worker's own registry by name.
//
// SIGINT/SIGTERM stops pulling and abandons any in-flight chunk; the
// lease machinery reassigns it. Run N processes (or -n within one) to
// scale out.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "http://localhost:8080", "base URL of the citadel-server coordinator")
		id          = flag.String("id", "", "worker ID (default: random; -n > 1 appends a slot suffix)")
		n           = flag.Int("n", 1, "worker loops to run in this process (one chunk each at a time)")
		poll        = flag.Duration("poll", 500*time.Millisecond, "idle poll interval when the coordinator has no work")
	)
	flag.Parse()
	if *n < 1 {
		*n = 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var wg sync.WaitGroup
	for i := 0; i < *n; i++ {
		wid := *id
		if wid != "" && *n > 1 {
			wid = fmt.Sprintf("%s-%d", wid, i)
		}
		w := cluster.NewWorker(cluster.WorkerOptions{
			BaseURL:      *coordinator,
			ID:           wid,
			PollInterval: *poll,
			Logf:         log.Printf,
		})
		log.Printf("citadel-worker %s pulling from %s", w.ID(), *coordinator)
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	wg.Wait()
	log.Printf("citadel-worker stopped")
}
