// Command benchjson converts `go test -bench` output (read from stdin) into
// a JSON benchmark report. The report keeps the verbatim benchmark lines —
// so `jq -r '.raw[]' BENCH_faultsim.json | benchstat /dev/stdin` works and
// two reports can be diffed with benchstat — alongside parsed per-benchmark
// metrics for dashboards.
//
// Usage:
//
//	go test -bench=... -benchmem ./... | benchjson -o BENCH_faultsim.json
//
// Non-benchmark lines (PASS, ok, test logs) are ignored; context lines
// (goos/goarch/pkg/cpu) are captured into the report header.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed `Benchmark*` result line.
type Benchmark struct {
	Name string `json:"name"`
	Pkg  string `json:"pkg,omitempty"`
	// Runs is the iteration count (b.N).
	Runs int64 `json:"runs"`
	// Metrics maps unit -> value for every reported pair, e.g.
	// "ns/op", "B/op", "allocs/op", "trials/s", "MB/s".
	Metrics map[string]float64 `json:"metrics"`
	// Raw is the verbatim line, benchstat-consumable.
	Raw string `json:"raw"`
}

// Report is the whole JSON document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Raw preserves every benchmark and context line in order, forming a
	// valid benchstat input when joined with newlines.
	Raw []string `json:"raw"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(trimmed, "goos:"))
			rep.Raw = append(rep.Raw, line)
		case strings.HasPrefix(trimmed, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(trimmed, "goarch:"))
			rep.Raw = append(rep.Raw, line)
		case strings.HasPrefix(trimmed, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(trimmed, "cpu:"))
			rep.Raw = append(rep.Raw, line)
		case strings.HasPrefix(trimmed, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(trimmed, "pkg:"))
			rep.Raw = append(rep.Raw, line)
		case strings.HasPrefix(trimmed, "Benchmark"):
			b, ok := parseBenchLine(trimmed)
			if !ok {
				continue
			}
			b.Pkg = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
			rep.Raw = append(rep.Raw, line)
		}
	}
	return rep, sc.Err()
}

// parseBenchLine parses "BenchmarkName-8  1000  123 ns/op  0 B/op ...".
// The name may carry a -GOMAXPROCS suffix; value/unit pairs follow the
// iteration count.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:    fields[0],
		Runs:    runs,
		Metrics: map[string]float64{},
		Raw:     line,
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
