// Command benchjson converts `go test -bench` output (read from stdin) into
// a JSON benchmark report. The report keeps the verbatim benchmark lines —
// so `jq -r '.raw[]' BENCH_faultsim.json | benchstat /dev/stdin` works and
// two reports can be diffed with benchstat — alongside parsed per-benchmark
// metrics for dashboards.
//
// Usage:
//
//	go test -bench=... -benchmem ./... | benchjson -o BENCH_faultsim.json
//	go test -bench=... -benchmem ./... | benchjson -compare BENCH_faultsim.json
//
// -compare gates performance against a baseline report: the run fails
// (exit 1) when any benchmark present in both reports regresses its
// trials/s throughput by more than -tolerance (default 10%) or increases
// its allocs/op at all. Benchmarks missing from either side are reported
// but do not fail the gate.
//
// Non-benchmark lines (PASS, ok, test logs) are ignored; context lines
// (goos/goarch/pkg/cpu) are captured into the report header.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed `Benchmark*` result line.
type Benchmark struct {
	Name string `json:"name"`
	Pkg  string `json:"pkg,omitempty"`
	// Runs is the iteration count (b.N).
	Runs int64 `json:"runs"`
	// Metrics maps unit -> value for every reported pair, e.g.
	// "ns/op", "B/op", "allocs/op", "trials/s", "MB/s".
	Metrics map[string]float64 `json:"metrics"`
	// Raw is the verbatim line, benchstat-consumable.
	Raw string `json:"raw"`
}

// Report is the whole JSON document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Raw preserves every benchmark and context line in order, forming a
	// valid benchstat input when joined with newlines.
	Raw []string `json:"raw"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.String("compare", "", "baseline report to gate against (exit 1 on regression)")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional trials/s regression vs the baseline")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *compare != "" {
		data, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var base Report
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", *compare, err)
			os.Exit(1)
		}
		regressions, notes := compareReports(&base, rep, *tolerance)
		for _, n := range notes {
			fmt.Println(n)
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "REGRESSION:", r)
			}
			os.Exit(1)
		}
		fmt.Printf("benchjson: no regressions vs %s (%d benchmarks compared)\n",
			*compare, len(notes))
		return
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// throughputUnits are the higher-is-better rates the gate tracks:
// trials/s is raw engine speed, efftrials/s the rare-event engine's
// variance-equivalent naive throughput (its whole reason to exist — a
// bias regression shows up here long before wall-clock moves),
// frames/s the SSE hub's fan-out rate, and polls/s the conditional-GET
// revalidation rate on the job-status route.
var throughputUnits = []string{"trials/s", "efftrials/s", "frames/s", "polls/s"}

// compareReports gates cur against base: a benchmark regresses when any
// tracked throughput unit drops more than tolerance below the baseline,
// or its allocs/op rises above the baseline at all (the trial loop is a
// zero-allocation contract, so any increase is a leak, not noise).
// Returns the failing descriptions plus one human-readable note per
// compared benchmark.
func compareReports(base, cur *Report, tolerance float64) (regressions, notes []string) {
	baseline := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Pkg+"/"+b.Name] = b
	}
	for _, b := range cur.Benchmarks {
		old, ok := baseline[b.Pkg+"/"+b.Name]
		if !ok {
			notes = append(notes, fmt.Sprintf("%-50s new (no baseline)", b.Name))
			continue
		}
		line := fmt.Sprintf("%-50s", b.Name)
		for _, unit := range throughputUnits {
			bt, ct := old.Metrics[unit], b.Metrics[unit]
			if bt <= 0 {
				continue
			}
			ratio := ct / bt
			line += fmt.Sprintf(" %s %.0f -> %.0f (%+.1f%%)", unit, bt, ct, 100*(ratio-1))
			if ratio < 1-tolerance {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %s %.0f -> %.0f (%.1f%% below baseline, tolerance %.0f%%)",
					b.Name, unit, bt, ct, 100*(1-ratio), 100*tolerance))
			}
		}
		if ba, ok := old.Metrics["allocs/op"]; ok {
			ca := b.Metrics["allocs/op"]
			line += fmt.Sprintf(" allocs/op %.0f -> %.0f", ba, ca)
			if ca > ba {
				regressions = append(regressions, fmt.Sprintf(
					"%s: allocs/op %.0f -> %.0f (any increase fails)", b.Name, ba, ca))
			}
		}
		notes = append(notes, line)
	}
	return regressions, notes
}

func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(trimmed, "goos:"))
			rep.Raw = append(rep.Raw, line)
		case strings.HasPrefix(trimmed, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(trimmed, "goarch:"))
			rep.Raw = append(rep.Raw, line)
		case strings.HasPrefix(trimmed, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(trimmed, "cpu:"))
			rep.Raw = append(rep.Raw, line)
		case strings.HasPrefix(trimmed, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(trimmed, "pkg:"))
			rep.Raw = append(rep.Raw, line)
		case strings.HasPrefix(trimmed, "Benchmark"):
			b, ok := parseBenchLine(trimmed)
			if !ok {
				continue
			}
			b.Pkg = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
			rep.Raw = append(rep.Raw, line)
		}
	}
	return rep, sc.Err()
}

// parseBenchLine parses "BenchmarkName-8  1000  123 ns/op  0 B/op ...".
// The name may carry a -GOMAXPROCS suffix; value/unit pairs follow the
// iteration count.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:    fields[0],
		Runs:    runs,
		Metrics: map[string]float64{},
		Raw:     line,
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
