package main

import (
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/faultsim
cpu: Test CPU
BenchmarkTrials/Citadel-8   	     100	  10000000 ns/op	       100000 trials/s	       0 B/op	       0 allocs/op
BenchmarkTrialStateRun-8    	    1000	   1000000 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/faultsim	2.0s
`

func mustParse(t *testing.T, s string) *Report {
	t.Helper()
	rep, err := parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParseBenchOutput(t *testing.T) {
	rep := mustParse(t, benchOutput)
	if rep.Goos != "linux" || rep.CPU != "Test CPU" {
		t.Fatalf("header = %q/%q", rep.Goos, rep.CPU)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Pkg != "repro/internal/faultsim" {
		t.Fatalf("pkg = %q", b.Pkg)
	}
	if b.Metrics["trials/s"] != 100000 || b.Metrics["allocs/op"] != 0 {
		t.Fatalf("metrics = %v", b.Metrics)
	}
}

func TestCompareNoRegression(t *testing.T) {
	base := mustParse(t, benchOutput)
	// 5% slower is inside the 10% tolerance.
	cur := mustParse(t, strings.ReplaceAll(benchOutput, "100000 trials/s", "95000 trials/s"))
	regressions, notes := compareReports(base, cur, 0.10)
	if len(regressions) != 0 {
		t.Fatalf("unexpected regressions: %v", regressions)
	}
	if len(notes) != 2 {
		t.Fatalf("got %d notes, want 2: %v", len(notes), notes)
	}
}

func TestCompareThroughputRegression(t *testing.T) {
	base := mustParse(t, benchOutput)
	cur := mustParse(t, strings.ReplaceAll(benchOutput, "100000 trials/s", "80000 trials/s"))
	regressions, _ := compareReports(base, cur, 0.10)
	if len(regressions) != 1 || !strings.Contains(regressions[0], "trials/s") {
		t.Fatalf("regressions = %v, want one trials/s failure", regressions)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := mustParse(t, benchOutput)
	// Any alloc increase fails, even with throughput unchanged.
	cur := mustParse(t, strings.Replace(benchOutput, "0 allocs/op", "1 allocs/op", 1))
	regressions, _ := compareReports(base, cur, 0.10)
	if len(regressions) != 1 || !strings.Contains(regressions[0], "allocs/op") {
		t.Fatalf("regressions = %v, want one allocs/op failure", regressions)
	}
}

func TestCompareIgnoresUnmatchedBenchmarks(t *testing.T) {
	base := mustParse(t, benchOutput)
	cur := mustParse(t, strings.ReplaceAll(benchOutput, "BenchmarkTrialStateRun", "BenchmarkBrandNew"))
	regressions, notes := compareReports(base, cur, 0.10)
	if len(regressions) != 0 {
		t.Fatalf("unexpected regressions: %v", regressions)
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "BenchmarkBrandNew") && strings.Contains(n, "no baseline") {
			found = true
		}
	}
	if !found {
		t.Fatalf("new benchmark not noted: %v", notes)
	}
}
