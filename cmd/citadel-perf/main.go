// Command citadel-perf runs the performance/power model for one benchmark
// (or all of them) under a chosen striping layout and protection scheme.
//
// Usage:
//
//	citadel-perf -benchmark mcf -striping across-channels
//	citadel-perf -benchmark all -protection 3dp
//	citadel-perf -benchmark mcf -phases -trace mcf.json
//	citadel-perf -list
//
// -phases prints the per-read latency attribution (queue / activate / cas /
// bus / burst, plus the 3DP parity overhead). -trace writes sampled
// per-request spans as Chrome trace-event JSON (timestamps in memory-bus
// cycles; open in Perfetto / chrome://tracing).
package main

import (
	"flag"
	"fmt"
	"os"

	citadel "repro"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

func parseStriping(s string) (citadel.Striping, bool) {
	switch s {
	case "same-bank":
		return citadel.SameBank, true
	case "across-banks":
		return citadel.AcrossBanks, true
	case "across-channels":
		return citadel.AcrossChannels, true
	}
	return citadel.SameBank, false
}

func parseProtection(s string) (citadel.Protection, bool) {
	switch s {
	case "none":
		return citadel.NoProtection, true
	case "3dp":
		return citadel.Protection3DP, true
	case "3dp-no-cache":
		return citadel.Protection3DPNoCache, true
	}
	return citadel.NoProtection, false
}

func main() {
	var (
		benchmark  = flag.String("benchmark", "all", "benchmark name or 'all'")
		striping   = flag.String("striping", "same-bank", "same-bank | across-banks | across-channels")
		protection = flag.String("protection", "none", "none | 3dp | 3dp-no-cache")
		requests   = flag.Int("requests", 100000, "memory requests to simulate")
		seed       = flag.Int64("seed", 1, "random seed")
		list       = flag.Bool("list", false, "list benchmarks and exit")
		phases     = flag.Bool("phases", false, "print per-read latency attribution")
		traceOut   = flag.String("trace", "", "write sampled request spans (Chrome trace-event JSON) to this file")
		sample     = flag.Int("sample", 64, "trace: keep roughly 1-in-N read spans")
	)
	flag.Parse()

	if *list {
		for _, b := range citadel.Benchmarks() {
			fmt.Printf("%-12s %-9s MPKI=%.1f WBPKI=%.1f\n", b.Name, b.Suite, b.MPKI, b.WBPKI)
		}
		return
	}
	st, ok := parseStriping(*striping)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown striping %q\n", *striping)
		os.Exit(2)
	}
	prot, ok := parseProtection(*protection)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown protection %q\n", *protection)
		os.Exit(2)
	}

	var benches []citadel.Benchmark
	if *benchmark == "all" {
		benches = citadel.Benchmarks()
	} else {
		b, ok := citadel.BenchmarkByName(*benchmark)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q; use -list\n", *benchmark)
			os.Exit(2)
		}
		benches = []citadel.Benchmark{b}
	}

	var rec *trace.Recorder
	runID := obs.NewRunID()
	if *traceOut != "" {
		rec = trace.New(trace.Options{
			RunID:       runID,
			SampleEvery: *sample,
			Seed:        *seed,
			ClockUnit:   "cycles",
		})
	}

	fmt.Printf("%-12s %-9s %14s %14s %16s %10s\n",
		"benchmark", "suite", "cycles", "norm.time", "active power W", "row-hit")
	for _, b := range benches {
		base := citadel.SimulatePerformance(b, citadel.PerfOptions{Requests: *requests, Seed: *seed})
		r := citadel.SimulatePerformance(b, citadel.PerfOptions{
			Striping: st, Protection: prot, Requests: *requests, Seed: *seed,
			RunID: runID, Tracer: rec,
		})
		fmt.Printf("%-12s %-9s %14d %14.3f %16.3f %9.1f%%\n",
			b.Name, b.Suite, r.Cycles,
			float64(r.Cycles)/float64(base.Cycles),
			r.ActivePowerWatts, 100*r.RowHitRate)
		if *phases {
			p := r.ReadPhases
			fmt.Printf("%-12s   read latency %.1f cycles = queue %.1f + activate %.1f + cas %.1f + bus %.1f + burst %.1f",
				"", r.AvgReadLatencyCycles, p.Queue, p.Activate, p.CAS, p.Bus, p.Burst)
			if r.AvgParityOverheadCycles > 0 {
				fmt.Printf("; parity overhead %.1f cycles/writeback", r.AvgParityOverheadCycles)
			}
			fmt.Println()
		}
	}
	if rec.Enabled() {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = rec.WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: run=%s %d events (%d dropped) -> %s\n",
			runID, rec.Len(), rec.Dropped(), *traceOut)
	}
}
