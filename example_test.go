package citadel_test

import (
	"bytes"
	"fmt"

	citadel "repro"
)

// ExampleNewController shows the functional pipeline on a tiny stack:
// write a line, break its DRAM row, and read it back intact.
func ExampleNewController() {
	ctl, err := citadel.NewController(citadel.TinyConfig())
	if err != nil {
		panic(err)
	}
	line := bytes.Repeat([]byte{0x5A}, ctl.Config().LineBytes)
	if err := ctl.Write(7, line); err != nil {
		panic(err)
	}
	co := ctl.Config().CoordOfLineIndex(7)
	ctl.InjectFault(citadel.RowFault(co.Stack, co.Die, co.Bank, co.Row))
	got, err := ctl.Read(7)
	if err != nil {
		panic(err)
	}
	s := ctl.Stats()
	fmt.Println("intact:", bytes.Equal(got, line))
	fmt.Println("corrections:", s.Corrections, "rows spared:", s.RowsSpared)
	// Output:
	// intact: true
	// corrections: 1 rows spared: 1
}

// ExampleSimulateReliability runs a small Monte Carlo study.
func ExampleSimulateReliability() {
	res := citadel.SimulateReliability(citadel.ReliabilityOptions{
		Trials: 2000,
		Seed:   1,
	}, citadel.SchemeCitadel)
	fmt.Println(res.Policy, "trials:", res.Trials)
	// Output:
	// Citadel trials: 2000
}

// ExampleComputeStorageOverhead reproduces the paper's §VII-E accounting.
func ExampleComputeStorageOverhead() {
	ov := citadel.ComputeStorageOverhead(citadel.DefaultConfig())
	fmt.Printf("DRAM overhead: %.1f%%\n", 100*ov.Total())
	// Output:
	// DRAM overhead: 14.1%
}

// ExampleSimulatePerformance compares striping layouts for one benchmark.
func ExampleSimulatePerformance() {
	b, _ := citadel.BenchmarkByName("mcf")
	base := citadel.SimulatePerformance(b, citadel.PerfOptions{Requests: 20000, Seed: 1})
	striped := citadel.SimulatePerformance(b, citadel.PerfOptions{
		Striping: citadel.AcrossChannels, Requests: 20000, Seed: 1,
	})
	fmt.Println("striping is slower:", striped.Cycles > base.Cycles)
	// Output:
	// striping is slower: true
}
